//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides the slice of the criterion API the benches use: `Criterion`,
//! `benchmark_group` / `bench_with_input` / `bench_function`, `Bencher`
//! with `iter` / `iter_batched`, `BenchmarkId`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: a short warmup, then timed
//! batches until a wall-clock budget is reached; the median per-iteration
//! time is printed as `group/id ... <time>`. `--test` runs every bench
//! exactly once (the CI smoke mode); a positional argument filters
//! benchmarks by substring, as with real criterion.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted for API compatibility).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

/// Anything usable as a benchmark id (mirrors criterion's
/// `IntoBenchmarkId` flexibility for the call sites this workspace has).
pub trait IntoBenchmarkId {
    /// Convert into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self.to_string() }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// The benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    budget: Duration,
}

impl Criterion {
    /// Build from command-line arguments (`--test`, `--bench`, a filter).
    pub fn from_args() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--test" => test_mode = true,
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                s if s.starts_with("--") => {} // ignore unknown flags
                s => filter = Some(s.to_string()),
            }
        }
        Criterion { filter, test_mode, budget: Duration::from_millis(250) }
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        self.run_one(&name, &mut f);
        self
    }

    fn matches(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F>(&mut self, id: &str, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(id) {
            return;
        }
        let mut b = Bencher {
            test_mode: self.test_mode,
            budget: self.budget,
            samples: Vec::new(),
        };
        f(&mut b);
        if self.test_mode {
            println!("test {id} ... ok");
        } else {
            let t = b.median_ns();
            println!("{id:<48} {}", fmt_ns(t));
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is budget-driven here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmark a routine against a borrowed input.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        self.criterion.run_one(&full, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmark a routine with no input.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// End the group (drop would do; kept for API compatibility).
    pub fn finish(self) {}
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    test_mode: bool,
    budget: Duration,
    samples: Vec<u64>,
}

impl Bencher {
    /// Time `routine` repeatedly.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine());
            return;
        }
        // Warmup and per-batch calibration: grow the batch until one
        // batch takes ~1ms, then sample batches within the budget.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 2;
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline || self.samples.len() < 5 {
            let t0 = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(routine());
            }
            let ns = t0.elapsed().as_nanos() as u64 / batch;
            self.samples.push(ns);
            if self.samples.len() >= 200 {
                break;
            }
        }
    }

    /// Time `routine` on inputs produced by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            std::hint::black_box(routine(setup()));
            return;
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline || self.samples.len() < 5 {
            let input = setup();
            let t0 = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(t0.elapsed().as_nanos() as u64);
            if self.samples.len() >= 200 {
                break;
            }
        }
    }

    fn median_ns(&mut self) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        self.samples.sort_unstable();
        self.samples[self.samples.len() / 2]
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Re-export point used by `criterion::black_box` callers.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a function running the given benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
