//! Hash-consing of `(source, destination)` mapping pairs.
//!
//! PR 5 deduplicated mapping storage behind one shared
//! `Arc<(NormalizedMapping, NormalizedMapping)>` *per plan*: the plan
//! and its compiled copy program hold the same allocation. This module
//! extends that sharing across plans: every pair of equal mappings
//! interns to **one** process-wide `Arc`, so two plans over the same
//! (src, dst) pair — computed by different arrays, programs, or
//! interpreter sessions — hold pointer-identical pairs. That pointer
//! identity is what keys the runtime's shared plan registry
//! (`hpfc_runtime::registry`): an equality check on two mappings
//! becomes a pointer compare.
//!
//! The interner holds [`Weak`] references only — it never keeps a
//! mapping pair alive. When the last plan over a pair drops, the pair
//! drops with it and the table slot is pruned on the next insertion
//! into its bucket. Consumers that need a pair's identity to stay
//! stable (the plan registry) keep their own strong reference.
//!
//! Lookups of an already-interned pair are allocation-free: the pair is
//! hashed on the stack, the bucket is probed in place, and a hit
//! returns an `Arc` clone — part of the zero-allocation cached-remap
//! contract pinned by the runtime's counting-allocator test.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::mapping::NormalizedMapping;

/// A hash-consed `(source, destination)` mapping pair: equal pairs
/// interned through [`pair`] share one allocation, so pointer identity
/// (`Arc::ptr_eq`) coincides with value equality for live pairs.
pub type MappingPair = Arc<(NormalizedMapping, NormalizedMapping)>;

/// Interner shard count. Sharded so concurrent sessions interning
/// unrelated pairs do not serialize on one lock; the shard is picked
/// by the pair's hash, so equal pairs always meet in the same shard.
const SHARDS: usize = 8;

type Bucket = Vec<Weak<(NormalizedMapping, NormalizedMapping)>>;

#[derive(Default)]
struct Shard {
    /// Hash → candidates with that hash (collisions are value-checked).
    buckets: HashMap<u64, Bucket>,
}

/// A weak, sharded hash-consing table for mapping pairs.
///
/// Usually used through the process-wide instance behind [`pair`];
/// separate instances exist only for tests that need isolation.
pub struct PairInterner {
    shards: [Mutex<Shard>; SHARDS],
}

impl Default for PairInterner {
    fn default() -> Self {
        PairInterner::new()
    }
}

impl std::fmt::Debug for PairInterner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PairInterner").field("live_pairs", &self.live_pairs()).finish()
    }
}

impl PairInterner {
    /// An empty interner.
    pub fn new() -> Self {
        PairInterner { shards: std::array::from_fn(|_| Mutex::new(Shard::default())) }
    }

    fn hash_pair(src: &NormalizedMapping, dst: &NormalizedMapping) -> u64 {
        let mut h = DefaultHasher::new();
        src.hash(&mut h);
        dst.hash(&mut h);
        h.finish()
    }

    /// The canonical `Arc` for `(src, dst)`: an existing live pair of
    /// equal value is returned as-is (allocation-free), otherwise the
    /// pair is cloned into a fresh `Arc` and recorded weakly.
    pub fn intern(&self, src: &NormalizedMapping, dst: &NormalizedMapping) -> MappingPair {
        let key = Self::hash_pair(src, dst);
        let shard = &self.shards[(key as usize) % SHARDS];
        let mut s = shard.lock().unwrap();
        if let Some(bucket) = s.buckets.get_mut(&key) {
            for w in bucket.iter() {
                if let Some(live) = w.upgrade() {
                    if live.0 == *src && live.1 == *dst {
                        return live;
                    }
                }
            }
        }
        // Miss: intern a fresh pair, pruning dead slots on the way in so
        // churned pairs do not accumulate in the bucket.
        let fresh: MappingPair = Arc::new((src.clone(), dst.clone()));
        let bucket = s.buckets.entry(key).or_default();
        bucket.retain(|w| w.strong_count() > 0);
        bucket.push(Arc::downgrade(&fresh));
        fresh
    }

    /// Number of currently live interned pairs (test introspection;
    /// takes every shard lock).
    pub fn live_pairs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap()
                    .buckets
                    .values()
                    .map(|b| b.iter().filter(|w| w.strong_count() > 0).count())
                    .sum::<usize>()
            })
            .sum()
    }
}

/// The process-wide interner behind [`pair`].
pub fn global() -> &'static PairInterner {
    static GLOBAL: OnceLock<PairInterner> = OnceLock::new();
    GLOBAL.get_or_init(PairInterner::new)
}

/// Intern `(src, dst)` in the process-wide table — the canonical way to
/// build a shared mapping pair. Equal pairs return pointer-identical
/// `Arc`s for as long as at least one strong reference is live.
pub fn pair(src: &NormalizedMapping, dst: &NormalizedMapping) -> MappingPair {
    global().intern(src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DimFormat;
    use crate::testing::mapping_1d;

    fn distinct_pair() -> (NormalizedMapping, NormalizedMapping) {
        // An extent no other test uses, so the process-wide table holds
        // exactly the references this test creates.
        (
            mapping_1d(4093, 4, DimFormat::Block(None)),
            mapping_1d(4093, 4, DimFormat::Cyclic(Some(3))),
        )
    }

    #[test]
    fn equal_pairs_intern_to_one_arc() {
        let (a, b) = distinct_pair();
        let p1 = pair(&a, &b);
        let p2 = pair(&a.clone(), &b.clone());
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(Arc::strong_count(&p1), 2, "interner must not hold strong refs");
        // The reversed direction is a different pair.
        let rev = pair(&b, &a);
        assert!(!Arc::ptr_eq(&p1, &rev));
    }

    #[test]
    fn dropped_pairs_are_reclaimed_and_reinterned() {
        let interner = PairInterner::new();
        let (a, b) = distinct_pair();
        let p1 = interner.intern(&a, &b);
        assert_eq!(interner.live_pairs(), 1);
        let addr = Arc::as_ptr(&p1) as usize;
        drop(p1);
        assert_eq!(interner.live_pairs(), 0, "weak table must not keep pairs alive");
        // Re-interning after the pair died yields a fresh (live) pair.
        let p2 = interner.intern(&a, &b);
        assert_eq!(interner.live_pairs(), 1);
        let _ = addr; // the new allocation may or may not reuse the address
        assert_eq!(*p2, (a, b));
    }

    #[test]
    fn concurrent_interning_converges_on_one_pair() {
        let interner = std::sync::Arc::new(PairInterner::new());
        let (a, b) = distinct_pair();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let interner = std::sync::Arc::clone(&interner);
                let (a, b) = (a.clone(), b.clone());
                std::thread::spawn(move || interner.intern(&a, &b))
            })
            .collect();
        let pairs: Vec<MappingPair> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for p in &pairs[1..] {
            assert!(Arc::ptr_eq(&pairs[0], p));
        }
        assert_eq!(interner.live_pairs(), 1);
    }
}
