//! Distribution formats: how template axes are partitioned over a
//! processor grid (`!HPF$ DISTRIBUTE T(BLOCK, CYCLIC(3), *) ONTO P`).

use crate::geometry::ceil_div;
use crate::GridId;

/// Per-template-dimension distribution format.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DimFormat {
    /// `BLOCK(b)`; `None` means the HPF default `⌈extent/nprocs⌉`.
    Block(Option<u64>),
    /// `CYCLIC(b)`; `None` means `CYCLIC(1)`.
    Cyclic(Option<u64>),
    /// `*` — the dimension is collapsed (kept whole on every processor
    /// along it; it consumes no processor-grid axis).
    Collapsed,
}

impl DimFormat {
    /// Whether this format consumes a processor-grid axis.
    pub fn is_distributed(&self) -> bool {
        !matches!(self, DimFormat::Collapsed)
    }

    /// The effective block size once extents are known.
    ///
    /// * `Block(None)`  → `⌈extent/nprocs⌉`
    /// * `Block(Some(b))` / `Cyclic(Some(b))` → `b`
    /// * `Cyclic(None)` → `1`
    ///
    /// Returns `None` for [`DimFormat::Collapsed`].
    pub fn effective_block(&self, extent: u64, nprocs: u64) -> Option<u64> {
        match self {
            DimFormat::Block(Some(b)) | DimFormat::Cyclic(Some(b)) => Some(*b),
            DimFormat::Block(None) => Some(ceil_div(extent, nprocs.max(1))),
            DimFormat::Cyclic(None) => Some(1),
            DimFormat::Collapsed => None,
        }
    }
}

impl std::fmt::Display for DimFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimFormat::Block(None) => write!(f, "BLOCK"),
            DimFormat::Block(Some(b)) => write!(f, "BLOCK({b})"),
            DimFormat::Cyclic(None) => write!(f, "CYCLIC"),
            DimFormat::Cyclic(Some(b)) => write!(f, "CYCLIC({b})"),
            DimFormat::Collapsed => write!(f, "*"),
        }
    }
}

/// A full `DISTRIBUTE` directive body: one format per template dimension,
/// onto a processor grid.
///
/// The i-th *distributed* (non-`*`) format is assigned to the i-th axis
/// of the grid, per the HPF rules.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Distribution {
    /// Target processor grid.
    pub grid: GridId,
    /// One format per template dimension.
    pub formats: Vec<DimFormat>,
}

impl Distribution {
    /// Construct a distribution; no validation (see
    /// [`crate::env::MappingEnv`] for validated declaration).
    pub fn new(grid: GridId, formats: Vec<DimFormat>) -> Self {
        Distribution { grid, formats }
    }

    /// Number of template dims that consume a processor-grid axis.
    pub fn distributed_rank(&self) -> usize {
        self.formats.iter().filter(|f| f.is_distributed()).count()
    }

    /// For each template dimension, the processor-grid axis it is
    /// distributed onto (`None` for collapsed dims).
    pub fn proc_axis_of_dim(&self) -> Vec<Option<usize>> {
        let mut next = 0usize;
        self.formats
            .iter()
            .map(|f| {
                if f.is_distributed() {
                    let a = next;
                    next += 1;
                    Some(a)
                } else {
                    None
                }
            })
            .collect()
    }
}

impl std::fmt::Display for Distribution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, fm) in self.formats.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{fm}")?;
        }
        write!(f, ") ONTO P{}", self.grid.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_blocks() {
        assert_eq!(DimFormat::Block(None).effective_block(100, 4), Some(25));
        assert_eq!(DimFormat::Block(None).effective_block(101, 4), Some(26));
        assert_eq!(DimFormat::Block(Some(30)).effective_block(100, 4), Some(30));
        assert_eq!(DimFormat::Cyclic(None).effective_block(100, 4), Some(1));
        assert_eq!(DimFormat::Cyclic(Some(7)).effective_block(100, 4), Some(7));
        assert_eq!(DimFormat::Collapsed.effective_block(100, 4), None);
    }

    #[test]
    fn proc_axis_assignment_skips_collapsed() {
        let d = Distribution::new(
            GridId(0),
            vec![DimFormat::Collapsed, DimFormat::Block(None), DimFormat::Cyclic(None)],
        );
        assert_eq!(d.proc_axis_of_dim(), vec![None, Some(0), Some(1)]);
        assert_eq!(d.distributed_rank(), 2);
    }
}
