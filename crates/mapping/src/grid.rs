//! Processor grids (`!HPF$ PROCESSORS`) and templates (`!HPF$ TEMPLATE`).

use crate::geometry::Extents;
use crate::{GridId, TemplateId};

/// An abstract rectangular grid of processors, the target of
/// `DISTRIBUTE … ONTO`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ProcGrid {
    /// Identity within a [`crate::env::MappingEnv`].
    pub id: GridId,
    /// Source-level name (`P` in `!HPF$ PROCESSORS P(4,2)`).
    pub name: String,
    /// Grid shape; `volume()` is the number of processors.
    pub shape: Extents,
}

impl ProcGrid {
    /// Total number of processors in the grid.
    pub fn nprocs(&self) -> u64 {
        self.shape.volume()
    }

    /// Row-major rank of the processor at grid coordinates `coords`.
    pub fn rank_of(&self, coords: &[u64]) -> u64 {
        self.shape.linearize(coords)
    }

    /// Grid coordinates of the processor with row-major rank `rank`.
    pub fn coords_of(&self, rank: u64) -> Vec<u64> {
        self.shape.delinearize(rank)
    }
}

/// An alignment target: a named rectangular index space that arrays are
/// aligned to and that distributions partition over a [`ProcGrid`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Template {
    /// Identity within a [`crate::env::MappingEnv`].
    pub id: TemplateId,
    /// Source-level name (`T` in `!HPF$ TEMPLATE T(100,100)`).
    pub name: String,
    /// Template shape.
    pub shape: Extents,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_roundtrip() {
        let g = ProcGrid {
            id: GridId(0),
            name: "P".into(),
            shape: Extents::new(&[2, 3]),
        };
        assert_eq!(g.nprocs(), 6);
        for r in 0..6 {
            assert_eq!(g.rank_of(&g.coords_of(r)), r);
        }
    }
}
