//! Alignments: the affine first level of the two-level HPF mapping
//! (`!HPF$ ALIGN A(i,j) WITH T(j+1, 2*i)`).

use crate::TemplateId;

/// What a single *template* axis receives from the aligned array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlignTarget {
    /// The template axis tracks array axis `array_dim` affinely:
    /// `t = stride * a + offset` (zero-based; stride may be negative).
    Axis {
        /// Which array dimension feeds this template dimension.
        array_dim: usize,
        /// Affine stride (non-zero).
        stride: i64,
        /// Affine offset.
        offset: i64,
    },
    /// The array is replicated along this template axis (`*` subscript
    /// on the template side).
    Replicate,
    /// The whole array sits at one fixed coordinate of this template
    /// axis (a constant subscript).
    Constant(i64),
}

impl AlignTarget {
    /// Identity axis alignment `t = a` for array dimension `d`.
    pub fn identity(d: usize) -> Self {
        AlignTarget::Axis { array_dim: d, stride: 1, offset: 0 }
    }

    /// Evaluate the template coordinate for array point `p`
    /// (`None` for [`AlignTarget::Replicate`], which spans the axis).
    pub fn eval(&self, p: &[u64]) -> Option<i64> {
        match *self {
            AlignTarget::Axis { array_dim, stride, offset } => {
                Some(stride * p[array_dim] as i64 + offset)
            }
            AlignTarget::Constant(c) => Some(c),
            AlignTarget::Replicate => None,
        }
    }
}

/// A complete alignment of one array onto a template: one
/// [`AlignTarget`] per *template* dimension.
///
/// Invariants (checked by [`Alignment::validate`]):
/// * each array axis is used by at most one template axis;
/// * strides are non-zero.
///
/// Array axes used by no template axis are *collapsed on the template*:
/// the element's coordinate along them does not influence placement
/// (HPF's `ALIGN A(i,*) WITH T(i)` effect).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Alignment {
    /// The template this alignment targets.
    pub template: TemplateId,
    /// One entry per template dimension.
    pub targets: Vec<AlignTarget>,
}

impl Alignment {
    /// The identity alignment of an `rank`-dimensional array onto an
    /// equally-ranked template (`ALIGN A(i1,…,ik) WITH T(i1,…,ik)`).
    pub fn identity(template: TemplateId, rank: usize) -> Self {
        Alignment { template, targets: (0..rank).map(AlignTarget::identity).collect() }
    }

    /// A transposing alignment for a rank-2 array:
    /// `ALIGN A(i,j) WITH T(j,i)` (paper Fig. 1/2).
    pub fn transpose2(template: TemplateId) -> Self {
        Alignment {
            template,
            targets: vec![
                AlignTarget::Axis { array_dim: 1, stride: 1, offset: 0 },
                AlignTarget::Axis { array_dim: 0, stride: 1, offset: 0 },
            ],
        }
    }

    /// Check the structural invariants; returns a human-readable reason
    /// on failure.
    pub fn validate(&self, array_rank: usize) -> Result<(), String> {
        let mut used = vec![false; array_rank];
        for (tdim, t) in self.targets.iter().enumerate() {
            if let AlignTarget::Axis { array_dim, stride, .. } = t {
                if *array_dim >= array_rank {
                    return Err(format!(
                        "template dim {tdim} references array axis {array_dim} \
                         but array rank is {array_rank}"
                    ));
                }
                if *stride == 0 {
                    return Err(format!("template dim {tdim} has zero stride"));
                }
                if used[*array_dim] {
                    return Err(format!("array axis {array_dim} aligned twice"));
                }
                used[*array_dim] = true;
            }
        }
        Ok(())
    }

    /// Template coordinates of array point `p`; `None` entries are
    /// replicated axes (the point occupies the whole axis).
    pub fn image(&self, p: &[u64]) -> Vec<Option<i64>> {
        self.targets.iter().map(|t| t.eval(p)).collect()
    }

    /// The array axes *not* used by any template axis (collapsed by the
    /// alignment).
    pub fn unused_array_axes(&self, array_rank: usize) -> Vec<usize> {
        let mut used = vec![false; array_rank];
        for t in &self.targets {
            if let AlignTarget::Axis { array_dim, .. } = t {
                used[*array_dim] = true;
            }
        }
        (0..array_rank).filter(|&d| !used[d]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_image() {
        let a = Alignment::identity(TemplateId(0), 2);
        assert_eq!(a.image(&[3, 5]), vec![Some(3), Some(5)]);
        a.validate(2).unwrap();
    }

    #[test]
    fn transpose_image() {
        let a = Alignment::transpose2(TemplateId(0));
        assert_eq!(a.image(&[3, 5]), vec![Some(5), Some(3)]);
        a.validate(2).unwrap();
    }

    #[test]
    fn affine_image_with_offset_and_stride() {
        let a = Alignment {
            template: TemplateId(0),
            targets: vec![AlignTarget::Axis { array_dim: 0, stride: 2, offset: 1 }],
        };
        assert_eq!(a.image(&[4]), vec![Some(9)]);
    }

    #[test]
    fn replicate_and_constant() {
        let a = Alignment {
            template: TemplateId(0),
            targets: vec![AlignTarget::Replicate, AlignTarget::Constant(7)],
        };
        assert_eq!(a.image(&[0]), vec![None, Some(7)]);
        assert_eq!(a.unused_array_axes(1), vec![0]);
    }

    #[test]
    fn validate_rejects_double_use() {
        let a = Alignment {
            template: TemplateId(0),
            targets: vec![AlignTarget::identity(0), AlignTarget::identity(0)],
        };
        assert!(a.validate(1).is_err());
    }

    #[test]
    fn validate_rejects_zero_stride_and_bad_axis() {
        let z = Alignment {
            template: TemplateId(0),
            targets: vec![AlignTarget::Axis { array_dim: 0, stride: 0, offset: 0 }],
        };
        assert!(z.validate(1).is_err());
        let oob = Alignment {
            template: TemplateId(0),
            targets: vec![AlignTarget::Axis { array_dim: 3, stride: 1, offset: 0 }],
        };
        assert!(oob.validate(1).is_err());
    }
}
