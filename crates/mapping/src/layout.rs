//! One-dimensional block-cyclic ownership math.
//!
//! Every HPF distribution format of a single dimension reduces to
//! *block-cyclic(b) over P processors*: `BLOCK(b)` is the special case
//! that never wraps (HPF mandates `b*P >= extent`), `CYCLIC` is
//! `CYCLIC(1)`. [`DimLayout`] is that canonical descriptor, and is the
//! unit the redistribution engine (crate `hpfc-runtime`) reasons about.

/// Canonical layout of one distributed dimension: block-cyclic(`block`)
/// over `nprocs` processors, covering `extent` cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DimLayout {
    /// Number of cells along the dimension.
    pub extent: u64,
    /// Block size `b` (>= 1).
    pub block: u64,
    /// Number of processors along the matching grid axis (>= 1).
    pub nprocs: u64,
}

impl DimLayout {
    /// New layout; panics on zero block or zero processors (these are
    /// rejected earlier with proper diagnostics).
    pub fn new(extent: u64, block: u64, nprocs: u64) -> Self {
        assert!(block >= 1, "block size must be >= 1");
        assert!(nprocs >= 1, "processor count must be >= 1");
        DimLayout { extent, block, nprocs }
    }

    /// Owner coordinate of cell `t`: `(t / b) mod P`.
    pub fn owner(&self, t: u64) -> u64 {
        (t / self.block) % self.nprocs
    }

    /// Which wrap-around cycle cell `t` falls in: `t / (b*P)`.
    pub fn cycle(&self, t: u64) -> u64 {
        t / (self.block * self.nprocs)
    }

    /// The ownership period `b·P`: owner and in-cycle position of cell
    /// `t` depend only on `t mod period()`. This is the hyper-period
    /// descriptor the periodic interval algebra
    /// ([`crate::intervals::PeriodicSet`]) builds on; two layouts
    /// interact over `lcm` of their periods, never over the extent.
    pub fn period(&self) -> u64 {
        self.block * self.nprocs
    }

    /// The period of the owned index set of an array dimension feeding
    /// this layout through `t = stride·a + offset`: pulling the
    /// alignment stride inside divides the period by
    /// `gcd(|stride|, b·P)` (the offset only shifts the phase).
    pub fn alignment_period(&self, stride: i64) -> u64 {
        let p = self.period();
        p / crate::intervals::gcd(stride.unsigned_abs(), p)
    }

    /// Local cell index on the owner: `cycle*b + t mod b`.
    ///
    /// This is the standard dense block-cyclic local addressing: the
    /// owner stores its cells in global order with no holes.
    pub fn local(&self, t: u64) -> u64 {
        self.cycle(t) * self.block + t % self.block
    }

    /// Inverse of [`DimLayout::local`]: the global cell stored at local
    /// index `l` on processor coordinate `p` (may exceed `extent` for
    /// padding slots; callers check).
    pub fn global(&self, p: u64, l: u64) -> u64 {
        let cycle = l / self.block;
        cycle * self.block * self.nprocs + p * self.block + l % self.block
    }

    /// Number of cells owned by processor coordinate `p`.
    pub fn local_count(&self, p: u64) -> u64 {
        // Full cycles before the tail, then the partial cycle.
        let period = self.block * self.nprocs;
        let full_cycles = self.extent / period;
        let tail = self.extent % period;
        let tail_owned = tail.saturating_sub(p * self.block).min(self.block);
        full_cycles * self.block + tail_owned
    }

    /// Whether the layout wraps (more than one cycle). A `BLOCK`
    /// distribution never wraps; a wrapped layout is genuinely cyclic.
    pub fn wraps(&self) -> bool {
        self.extent > self.block * self.nprocs
    }

    /// Whether every cell lives on processor coordinate 0 (degenerate
    /// layout, e.g. `BLOCK(100)` over a 50-cell dimension on one cycle).
    pub fn degenerate(&self) -> bool {
        self.extent <= self.block
    }

    /// Cells owned by processor coordinate `p`, in increasing order.
    pub fn owned_cells(&self, p: u64) -> impl Iterator<Item = u64> + '_ {
        let period = self.block * self.nprocs;
        let extent = self.extent;
        let block = self.block;
        (0..)
            .map(move |cycle| cycle * period + p * block)
            .take_while(move |&start| start < extent)
            .flat_map(move |start| start..(start + block).min(extent))
    }

    /// The owned cells of `p` as half-open intervals `[lo, hi)`, one per
    /// cycle — the closed form the redistribution engine intersects.
    pub fn owned_intervals(&self, p: u64) -> Vec<(u64, u64)> {
        let period = self.block * self.nprocs;
        let mut v = Vec::new();
        let mut start = p * self.block;
        while start < self.extent {
            v.push((start, (start + self.block).min(self.extent)));
            start += period;
        }
        v
    }
}

impl std::fmt::Display for DimLayout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.wraps() {
            write!(f, "CYCLIC({})x{}[{}]", self.block, self.nprocs, self.extent)
        } else {
            write!(f, "BLOCK({})x{}[{}]", self.block, self.nprocs, self.extent)
        }
    }
}

/// The placement of a single array element under a normalized mapping:
/// the owning processor's grid coordinates and the element's local
/// per-dimension indices (see [`crate::mapping::NormalizedMapping`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Locus {
    /// Owner grid coordinates, one per processor-grid axis. Replicated
    /// axes are represented by `None` (the element lives at *every*
    /// coordinate of that axis).
    pub proc: Vec<Option<u64>>,
}

impl Locus {
    /// Enumerate the row-major processor ranks owning the element,
    /// expanding replicated axes over `grid_shape`.
    ///
    /// Uses a single buffer sized up front (no per-axis reallocation):
    /// pinned axes rewrite the ranks in place, replicated axes expand
    /// them back-to-front inside the same vector.
    pub fn owner_ranks(&self, grid_shape: &crate::geometry::Extents) -> Vec<u64> {
        let replicas: u64 = self
            .proc
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_none())
            .map(|(axis, _)| grid_shape.extent(axis))
            .product();
        let mut ranks = Vec::with_capacity(replicas as usize);
        ranks.push(0u64);
        for (axis, coord) in self.proc.iter().enumerate() {
            let n = grid_shape.extent(axis);
            match coord {
                Some(c) => {
                    for r in ranks.iter_mut() {
                        *r = *r * n + c;
                    }
                }
                None => {
                    let old = ranks.len();
                    ranks.resize(old * n as usize, 0);
                    // Expand from the back so each source slot is read
                    // before any of its target slots is written
                    // (`i*n + j >= i` for all j when n >= 1).
                    for i in (0..old).rev() {
                        let base = ranks[i] * n;
                        for j in (0..n).rev() {
                            ranks[i * n as usize + j as usize] = base + j;
                        }
                    }
                }
            }
        }
        ranks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_layout_owner_local() {
        // BLOCK(25) over 4 procs, extent 100.
        let l = DimLayout::new(100, 25, 4);
        assert!(!l.wraps());
        assert_eq!(l.owner(0), 0);
        assert_eq!(l.owner(24), 0);
        assert_eq!(l.owner(25), 1);
        assert_eq!(l.owner(99), 3);
        assert_eq!(l.local(26), 1);
        assert_eq!(l.local_count(2), 25);
    }

    #[test]
    fn cyclic_layout_owner_local() {
        // CYCLIC(1) over 4 procs, extent 10.
        let l = DimLayout::new(10, 1, 4);
        assert!(l.wraps());
        assert_eq!(l.owner(0), 0);
        assert_eq!(l.owner(5), 1);
        assert_eq!(l.owner(7), 3);
        assert_eq!(l.local(8), 2); // cells 0,4,8 on proc 0
        assert_eq!(l.local_count(0), 3);
        assert_eq!(l.local_count(1), 3);
        assert_eq!(l.local_count(2), 2);
        assert_eq!(l.local_count(3), 2);
    }

    #[test]
    fn block_cyclic_wraps() {
        // CYCLIC(3) over 2 procs, extent 14: blocks 0-2|3-5|6-8|9-11|12-13
        let l = DimLayout::new(14, 3, 2);
        assert_eq!(l.owner(4), 1);
        assert_eq!(l.owner(6), 0);
        assert_eq!(l.owner(13), 0); // cell 13 in block starting 12, block idx 4 -> 4%2=0
        assert_eq!(l.local(7), 4); // proc0 cells: 0,1,2,6,7,8,12,13
        assert_eq!(l.local_count(0), 8);
        assert_eq!(l.local_count(1), 6);
    }

    #[test]
    fn local_global_roundtrip() {
        for &(n, b, p) in &[(100u64, 25u64, 4u64), (10, 1, 4), (14, 3, 2), (17, 5, 3)] {
            let l = DimLayout::new(n, b, p);
            for t in 0..n {
                let owner = l.owner(t);
                let loc = l.local(t);
                assert_eq!(l.global(owner, loc), t, "layout {l} cell {t}");
            }
        }
    }

    #[test]
    fn owned_cells_matches_owner_predicate() {
        let l = DimLayout::new(23, 4, 3);
        for p in 0..3 {
            let from_iter: Vec<u64> = l.owned_cells(p).collect();
            let from_pred: Vec<u64> = (0..23).filter(|&t| l.owner(t) == p).collect();
            assert_eq!(from_iter, from_pred);
            assert_eq!(from_iter.len() as u64, l.local_count(p));
        }
    }

    #[test]
    fn owned_intervals_cover_owned_cells() {
        let l = DimLayout::new(29, 3, 4);
        for p in 0..4 {
            let cells: Vec<u64> = l.owned_cells(p).collect();
            let expanded: Vec<u64> =
                l.owned_intervals(p).iter().flat_map(|&(a, b)| a..b).collect();
            assert_eq!(cells, expanded);
        }
    }

    #[test]
    fn locus_owner_ranks_expand_replication() {
        use crate::geometry::Extents;
        let shape = Extents::new(&[2, 3]);
        let pinned = Locus { proc: vec![Some(1), Some(2)] };
        assert_eq!(pinned.owner_ranks(&shape), vec![5]);
        let repl = Locus { proc: vec![None, Some(1)] };
        assert_eq!(repl.owner_ranks(&shape), vec![1, 4]);
        let all = Locus { proc: vec![None, None] };
        assert_eq!(all.owner_ranks(&shape).len(), 6);
    }
}
