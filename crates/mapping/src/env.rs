//! Program-level mapping environment: the registry of grids, templates
//! and arrays, the `impact` semantics of remapping directives (App. B),
//! and the version-interning table that realizes the paper's `A_0, A_1,
//! …` static copies.

use std::collections::BTreeMap;

use crate::align::Alignment;
use crate::dist::Distribution;
use crate::error::MappingError;
use crate::geometry::Extents;
use crate::grid::{ProcGrid, Template};
use crate::mapping::{Mapping, NormalizedMapping};
use crate::{ArrayId, GridId, TemplateId, VersionId};

/// Static facts about one source array.
#[derive(Debug, Clone)]
pub struct ArrayInfo {
    /// Identity.
    pub id: ArrayId,
    /// Source name.
    pub name: String,
    /// Shape (zero-based extents).
    pub extents: Extents,
    /// Element size in bytes (8 for `real*8`).
    pub elem_size: u64,
    /// Whether the array was declared `!HPF$ DYNAMIC` (or is a dummy
    /// argument, which the paper treats as remappable by the caller).
    pub dynamic: bool,
    /// Mapping on entry (the paper's version 0).
    pub initial: Mapping,
}

/// The immutable mapping registry of one compilation unit.
///
/// `DISTRIBUTE A(BLOCK)` on an *array* is modelled, as in HPF, by an
/// implicit template the array is identity-aligned with; `ALIGN WITH A`
/// then targets that implicit template, which is how a redistribution of
/// `A` *impacts* every array aligned with `A` (paper Fig. 3).
#[derive(Debug, Clone, Default)]
pub struct MappingEnv {
    grids: Vec<ProcGrid>,
    templates: Vec<Template>,
    arrays: Vec<ArrayInfo>,
    /// Initial distribution of each template.
    initial_dists: BTreeMap<TemplateId, Distribution>,
    /// Implicit template of arrays used as alignment/distribution targets.
    implicit: BTreeMap<ArrayId, TemplateId>,
}

impl MappingEnv {
    /// Empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a processor grid.
    pub fn add_grid(&mut self, name: &str, shape: &[u64]) -> GridId {
        let id = GridId(self.grids.len() as u32);
        self.grids.push(ProcGrid { id, name: name.to_string(), shape: Extents::new(shape) });
        id
    }

    /// Declare a template.
    pub fn add_template(&mut self, name: &str, shape: &[u64]) -> TemplateId {
        let id = TemplateId(self.templates.len() as u32);
        self.templates.push(Template { id, name: name.to_string(), shape: Extents::new(shape) });
        id
    }

    /// Declare an array. The initial mapping must be set before use via
    /// [`MappingEnv::set_initial`].
    pub fn add_array(&mut self, name: &str, extents: &[u64], elem_size: u64) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        // Placeholder initial mapping: identity onto an implicit template
        // fixed up by `set_initial` / `ensure_implicit_template`.
        let t = self.add_template(&format!("__T_{name}"), extents);
        self.implicit.insert(id, t);
        self.arrays.push(ArrayInfo {
            id,
            name: name.to_string(),
            extents: Extents::new(extents),
            elem_size,
            dynamic: false,
            initial: Mapping {
                align: Alignment::identity(t, extents.len()),
                dist: Distribution::new(GridId(0), vec![]),
            },
        });
        id
    }

    /// The implicit template an array carries for `ALIGN WITH A` /
    /// `DISTRIBUTE A` directives.
    pub fn implicit_template(&self, a: ArrayId) -> TemplateId {
        self.implicit[&a]
    }

    /// Mark an array `DYNAMIC`.
    pub fn set_dynamic(&mut self, a: ArrayId, dynamic: bool) {
        self.arrays[a.0 as usize].dynamic = dynamic;
    }

    /// Set the entry mapping of an array.
    pub fn set_initial(&mut self, a: ArrayId, m: Mapping) {
        self.arrays[a.0 as usize].initial = m;
    }

    /// Set (or overwrite) the initial distribution of a template.
    pub fn set_initial_distribution(&mut self, t: TemplateId, d: Distribution) {
        self.initial_dists.insert(t, d);
    }

    /// Initial distribution of a template, if declared.
    pub fn initial_distribution(&self, t: TemplateId) -> Option<&Distribution> {
        self.initial_dists.get(&t)
    }

    /// Accessors.
    pub fn grid(&self, g: GridId) -> &ProcGrid {
        &self.grids[g.0 as usize]
    }
    /// Template by id.
    pub fn template(&self, t: TemplateId) -> &Template {
        &self.templates[t.0 as usize]
    }
    /// Array facts by id.
    pub fn array(&self, a: ArrayId) -> &ArrayInfo {
        &self.arrays[a.0 as usize]
    }
    /// All arrays in declaration order.
    pub fn arrays(&self) -> &[ArrayInfo] {
        &self.arrays
    }
    /// All grids in declaration order.
    pub fn grids(&self) -> &[ProcGrid] {
        &self.grids
    }
    /// All templates in declaration order (includes implicit ones).
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }
    /// Number of declared arrays.
    pub fn n_arrays(&self) -> usize {
        self.arrays.len()
    }
    /// Look an array up by source name.
    pub fn array_by_name(&self, name: &str) -> Option<&ArrayInfo> {
        self.arrays.iter().find(|a| a.name == name)
    }

    /// Compose and canonicalize `m` for array `a`.
    pub fn normalize(&self, a: ArrayId, m: &Mapping) -> Result<NormalizedMapping, MappingError> {
        let info = self.array(a);
        let template = self.template(m.align.template);
        let grid = self.grid(m.dist.grid);
        m.normalize(&info.extents, template, grid)
    }

    /// Apply a `REALIGN` to one mapping of array `a`: the distribution
    /// part becomes that of the *new* template (`template_dist`), the
    /// alignment is replaced. This is `impact` for realignment (App. B).
    pub fn realign(&self, _a: ArrayId, new_align: Alignment, template_dist: Distribution) -> Mapping {
        Mapping { align: new_align, dist: template_dist }
    }

    /// Apply a `REDISTRIBUTE` of template `t` to one mapping of array
    /// `a`. Returns `None` when the array is not aligned with `t` (the
    /// directive does not impact it). This is `impact` for
    /// redistribution (App. B; Fig. 3 semantics).
    pub fn redistribute(&self, m: &Mapping, t: TemplateId, new_dist: &Distribution) -> Option<Mapping> {
        if m.align.template == t {
            Some(Mapping { align: m.align.clone(), dist: new_dist.clone() })
        } else {
            None
        }
    }
}

/// Interns distinct normalized placements of each array, handing out the
/// paper's dense version subscripts (`A_0`, `A_1`, …) in discovery order.
#[derive(Debug, Clone, Default)]
pub struct VersionTable {
    /// Per-array list of distinct placements; index = version subscript.
    versions: BTreeMap<ArrayId, Vec<NormalizedMapping>>,
}

impl VersionTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a placement; returns the stable version id, allocating the
    /// next subscript if it is new.
    pub fn intern(&mut self, a: ArrayId, nm: &NormalizedMapping) -> VersionId {
        let list = self.versions.entry(a).or_default();
        if let Some(i) = list.iter().position(|x| x == nm) {
            VersionId { array: a, index: i as u32 }
        } else {
            list.push(nm.clone());
            VersionId { array: a, index: (list.len() - 1) as u32 }
        }
    }

    /// Lookup without interning.
    pub fn find(&self, a: ArrayId, nm: &NormalizedMapping) -> Option<VersionId> {
        self.versions
            .get(&a)?
            .iter()
            .position(|x| x == nm)
            .map(|i| VersionId { array: a, index: i as u32 })
    }

    /// The placement of a version.
    pub fn mapping_of(&self, v: VersionId) -> &NormalizedMapping {
        &self.versions[&v.array][v.index as usize]
    }

    /// Number of versions known for `a` (the paper's per-array copy count).
    pub fn n_versions(&self, a: ArrayId) -> usize {
        self.versions.get(&a).map_or(0, |v| v.len())
    }

    /// All version ids of array `a`.
    pub fn versions_of(&self, a: ArrayId) -> Vec<VersionId> {
        (0..self.n_versions(a) as u32).map(|i| VersionId { array: a, index: i }).collect()
    }

    /// All (array, version-count) pairs.
    pub fn summary(&self) -> Vec<(ArrayId, usize)> {
        self.versions.iter().map(|(a, v)| (*a, v.len())).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DimFormat;

    fn env_1d() -> (MappingEnv, ArrayId, GridId) {
        let mut env = MappingEnv::new();
        let g = env.add_grid("P", &[4]);
        let a = env.add_array("A", &[16], 8);
        let t = env.implicit_template(a);
        let m = Mapping {
            align: Alignment::identity(t, 1),
            dist: Distribution::new(g, vec![DimFormat::Block(None)]),
        };
        env.set_initial(a, m.clone());
        env.set_initial_distribution(t, m.dist.clone());
        (env, a, g)
    }

    #[test]
    fn versions_intern_densely_in_discovery_order() {
        let (env, a, g) = env_1d();
        let t = env.implicit_template(a);
        let mut vt = VersionTable::new();
        let m0 = env.array(a).initial.clone();
        let n0 = env.normalize(a, &m0).unwrap();
        let v0 = vt.intern(a, &n0);
        assert_eq!(v0, VersionId { array: a, index: 0 });

        let m1 = Mapping {
            align: Alignment::identity(t, 1),
            dist: Distribution::new(g, vec![DimFormat::Cyclic(None)]),
        };
        let n1 = env.normalize(a, &m1).unwrap();
        let v1 = vt.intern(a, &n1);
        assert_eq!(v1.index, 1);

        // Re-interning the initial placement returns version 0 again.
        assert_eq!(vt.intern(a, &n0).index, 0);
        assert_eq!(vt.n_versions(a), 2);
    }

    #[test]
    fn redistribute_impacts_only_aligned_arrays() {
        let (env, a, g) = env_1d();
        let t = env.implicit_template(a);
        let other_t = TemplateId(999);
        let m = env.array(a).initial.clone();
        let new_d = Distribution::new(g, vec![DimFormat::Cyclic(None)]);
        assert!(env.redistribute(&m, t, &new_d).is_some());
        assert!(env.redistribute(&m, other_t, &new_d).is_none());
    }

    #[test]
    fn redistribute_keeps_alignment() {
        let (env, a, g) = env_1d();
        let t = env.implicit_template(a);
        let m = env.array(a).initial.clone();
        let new_d = Distribution::new(g, vec![DimFormat::Cyclic(Some(2))]);
        let m2 = env.redistribute(&m, t, &new_d).unwrap();
        assert_eq!(m2.align, m.align);
        assert_eq!(m2.dist, new_d);
    }

    #[test]
    fn array_lookup_by_name() {
        let (env, a, _) = env_1d();
        assert_eq!(env.array_by_name("A").unwrap().id, a);
        assert!(env.array_by_name("Z").is_none());
    }
}
