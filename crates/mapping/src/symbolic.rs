//! Symbolic (process-count-free) mapping formats.
//!
//! A [`crate::NormalizedMapping`] is concrete in the processor count
//! `P`: its layout stores `nprocs`, its grid shape stores the grid
//! extent. Plans keyed by concrete mappings therefore multiply with
//! every grid size a job is launched on — re-provisioning a fleet from
//! `P = 16` to `P = 64` recompiles every pair even though nothing about
//! the *format* (block size, alignment stride/offset, template extent)
//! changed. This module factors `P` out: a [`SymbolicFormat`] is the
//! P-free residue of a normalized mapping — everything needed to
//! reconstruct the mapping at **any** processor count in closed form —
//! and [`normalize_symbolic`] extracts it with a round-trip guarantee:
//! a format is only produced when instantiating it back at the source
//! `P` reproduces the source mapping bit for bit. Instantiation at a
//! *different* `P` then builds exactly the mapping direct normalization
//! of the same HPF directives would build on the larger (or smaller)
//! grid, so every downstream artifact — plan, schedule, compiled copy
//! program — is byte-identical to direct compilation by construction
//! (pinned by `crates/runtime/tests/proptest_symbolic.rs`).
//!
//! The symbolic normalizer is deliberately partial: it accepts the
//! dominant production shape — a rank-1 array driving a rank-1 grid
//! axis through an affine alignment onto a block-cyclic layout — and
//! **declines** everything else (replication, constant alignments,
//! multi-dimensional grids, degenerate single-owner placements, empty
//! extents). A decline is never an error: callers fall back to the
//! concrete per-mapping-pair path, and the runtime counts declines in
//! `NetStats::symbolic_declines`. Multi-axis formats can land as
//! follow-ups without changing this contract.
//!
//! Like mapping pairs ([`crate::intern`]), `(format, format)` pairs are
//! hash-consed through a weak process-wide table ([`format_pair`]), so
//! pointer identity doubles as value equality for live pairs — the
//! property the runtime's plan registry keys on.

use std::collections::HashMap;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, OnceLock, Weak};

use crate::geometry::Extents;
use crate::layout::DimLayout;
use crate::mapping::{DimMap, DimSource, NormalizedMapping};
use crate::GridId;

/// The P-free residue of a normalized 1-D block-cyclic mapping: the
/// grid identity, the affine alignment, the block size, and the
/// template extent — everything except the processor count and the
/// array extent, which become [`SymbolicFormat::instantiate`]
/// parameters. Two mappings of one array family launched on different
/// grid sizes share one `SymbolicFormat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymbolicFormat {
    /// Identity of the target grid (placement is per-grid; two grids of
    /// equal shape are still distinct placement domains).
    pub grid: GridId,
    /// Alignment stride: array index `a` lands on template cell
    /// `stride·a + offset`.
    pub stride: i64,
    /// Alignment offset.
    pub offset: i64,
    /// Block size `b` of the block-cyclic layout (owner of template
    /// cell `t` is `(t/b) mod P`) — P-free by definition.
    pub block: u64,
    /// Extent of the distributed template dimension (templates are
    /// declared independently of the grid, so this does not change when
    /// the job is re-provisioned).
    pub template_extent: u64,
}

impl SymbolicFormat {
    /// Materialize the concrete [`NormalizedMapping`] of this format at
    /// processor count `p` for an array of shape `array_extents` — the
    /// closed-form inverse of [`normalize_symbolic`].
    ///
    /// Returns `None` when the instantiation would *not* reproduce what
    /// direct normalization builds: fewer than two processors, a rank
    /// other than 1, an alignment image escaping the template, or a
    /// placement that is single-owner at this `p` (the concrete
    /// normalizer canonicalizes those to `FixedCoord`, which this layer
    /// declines). The checks mirror `Mapping::normalize`
    /// (`crates/mapping/src/mapping.rs`) exactly.
    pub fn instantiate(&self, p: u64, array_extents: &Extents) -> Option<NormalizedMapping> {
        if array_extents.rank() != 1 {
            return None;
        }
        let layout = self.realize_layout(p, array_extents.extent(0))?;
        Some(NormalizedMapping {
            grid: self.grid,
            grid_shape: Extents::new(&[p]),
            axes: vec![DimMap {
                source: DimSource::ArrayAxis { dim: 0, stride: self.stride, offset: self.offset },
                layout: Some(layout),
            }],
            array_extents: array_extents.clone(),
        })
    }

    /// The decline checks and layout construction of
    /// [`SymbolicFormat::instantiate`] without building the mapping —
    /// pure stack arithmetic, so [`normalize_symbolic`] (which runs on
    /// every registry-served remap once the local cache is evicted) and
    /// the cached symbolic bounce stay allocation-free.
    fn realize_layout(&self, p: u64, n: u64) -> Option<DimLayout> {
        if p < 2 || n == 0 || self.block == 0 {
            return None;
        }
        // Image validation, as in `Mapping::normalize`.
        let last = self.stride * (n as i64 - 1) + self.offset;
        let lo = self.offset.min(last);
        let hi = self.offset.max(last);
        if lo < 0 || hi as u64 >= self.template_extent {
            return None;
        }
        let layout = DimLayout::new(self.template_extent, self.block, p);
        // Degenerate-at-this-P placements collapse to `FixedCoord`
        // under the concrete normalizer; decline rather than build a
        // mapping normalization would never produce.
        let single_owner = layout.owner(lo as u64) == layout.owner(hi as u64)
            && (lo as u64) / self.block == (hi as u64) / self.block;
        if single_owner {
            return None;
        }
        Some(layout)
    }
}

/// Extract the P-free format of a concrete mapping, together with the
/// processor count it was normalized at.
///
/// Accepts exactly the shapes [`SymbolicFormat::instantiate`] can
/// reproduce — rank-1 array, rank-1 grid of ≥ 2 processors, one
/// `ArrayAxis` axis with a layout — and additionally **round-trips**:
/// the format is instantiated back at the source `P` and compared to
/// the source mapping, so a `Some` return guarantees that symbolic
/// instantiation is lossless for this mapping. Everything else
/// (replication, fixed coordinates, multi-dimensional grids or arrays,
/// empty extents) returns `None` and stays on the concrete path.
pub fn normalize_symbolic(nm: &NormalizedMapping) -> Option<(SymbolicFormat, u64)> {
    if nm.grid_shape.rank() != 1 || nm.array_extents.rank() != 1 {
        return None;
    }
    let p = nm.grid_shape.extent(0);
    if p < 2 {
        return None;
    }
    let [ax] = nm.axes.as_slice() else { return None };
    let DimSource::ArrayAxis { dim: 0, stride, offset } = ax.source else { return None };
    let layout = ax.layout?;
    if layout.nprocs != p {
        return None;
    }
    let fmt = SymbolicFormat {
        grid: nm.grid,
        stride,
        offset,
        block: layout.block,
        template_extent: layout.extent,
    };
    // Round-trip guarantee: only admit formats whose instantiation at
    // the source P reproduces the source mapping exactly. Checked
    // field-wise rather than by building the mapping — this runs on
    // every registry-served remap, and the cached bounce is pinned
    // allocation-free. Grid, shape, axis source, and array extents are
    // equal by construction (extracted from `nm` above, shape checked
    // rank-1 with extent `p`); what remains is that instantiation at
    // `p` is realizable at all and reconstructs this exact layout.
    if fmt.realize_layout(p, nm.array_extents.extent(0)) != Some(layout) {
        return None;
    }
    Some((fmt, p))
}

/// A hash-consed `(source format, destination format)` pair: equal
/// pairs interned through [`format_pair`] share one allocation, so
/// pointer identity coincides with value equality for live pairs —
/// the key of the runtime registry's symbolic table.
pub type FormatPair = Arc<(SymbolicFormat, SymbolicFormat)>;

/// Interner shard count (mirrors [`crate::intern::PairInterner`]).
const SHARDS: usize = 8;

#[derive(Default)]
struct Shard {
    /// Formats are small `Copy` values, so the table maps the pair
    /// value directly to its weak canonical `Arc` (no hash-bucket
    /// collision chains needed).
    table: HashMap<(SymbolicFormat, SymbolicFormat), Weak<(SymbolicFormat, SymbolicFormat)>>,
}

/// A weak, sharded hash-consing table for format pairs. Usually used
/// through the process-wide instance behind [`format_pair`]; separate
/// instances exist only for tests that need isolation. Lookups of a
/// live pair are allocation-free (the key is built on the stack and a
/// hit returns an `Arc` clone) — part of the zero-allocation cached
/// symbolic bounce pinned by the runtime's counting-allocator test.
pub struct FormatPairInterner {
    shards: [Mutex<Shard>; SHARDS],
}

impl Default for FormatPairInterner {
    fn default() -> Self {
        FormatPairInterner::new()
    }
}

impl std::fmt::Debug for FormatPairInterner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FormatPairInterner").field("live_pairs", &self.live_pairs()).finish()
    }
}

impl FormatPairInterner {
    /// An empty interner.
    pub fn new() -> Self {
        FormatPairInterner { shards: std::array::from_fn(|_| Mutex::new(Shard::default())) }
    }

    fn shard_of(key: &(SymbolicFormat, SymbolicFormat)) -> usize {
        let mut h = DefaultHasher::new();
        key.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }

    /// The canonical `Arc` for `(src, dst)`: an existing live pair is
    /// returned as-is (allocation-free), otherwise a fresh `Arc` is
    /// recorded weakly — dead slots are reclaimed in place when their
    /// key is interned again.
    pub fn intern(&self, src: SymbolicFormat, dst: SymbolicFormat) -> FormatPair {
        let key = (src, dst);
        let mut shard = self.shards[Self::shard_of(&key)].lock().unwrap();
        if let Some(live) = shard.table.get(&key).and_then(Weak::upgrade) {
            return live;
        }
        let fresh: FormatPair = Arc::new(key);
        shard.table.insert(key, Arc::downgrade(&fresh));
        fresh
    }

    /// Number of currently live interned pairs (test introspection;
    /// takes every shard lock).
    pub fn live_pairs(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock().unwrap().table.values().filter(|w| w.strong_count() > 0).count()
            })
            .sum()
    }
}

/// The process-wide interner behind [`format_pair`].
pub fn global() -> &'static FormatPairInterner {
    static GLOBAL: OnceLock<FormatPairInterner> = OnceLock::new();
    GLOBAL.get_or_init(FormatPairInterner::new)
}

/// Intern `(src, dst)` in the process-wide table — the canonical way
/// to build a shared format pair. Equal pairs return pointer-identical
/// `Arc`s for as long as at least one strong reference is live.
pub fn format_pair(src: SymbolicFormat, dst: SymbolicFormat) -> FormatPair {
    global().intern(src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DimFormat;
    use crate::testing::mapping_1d;

    #[test]
    fn round_trip_at_source_p_is_exact() {
        for fmt in [DimFormat::Cyclic(None), DimFormat::Cyclic(Some(3)), DimFormat::Block(None)] {
            let nm = mapping_1d(96, 4, fmt);
            let (sym, p) = normalize_symbolic(&nm).expect("1-D block-cyclic is symbolic");
            assert_eq!(p, 4);
            assert_eq!(sym.instantiate(p, &nm.array_extents).unwrap(), nm);
        }
    }

    #[test]
    fn cross_p_instantiation_matches_direct_normalization() {
        // Fixed-block formats are P-free: the format extracted at P=4
        // instantiates at any P to the directly normalized mapping.
        let reference = mapping_1d(2016, 4, DimFormat::Cyclic(Some(3)));
        let (sym, _) = normalize_symbolic(&reference).unwrap();
        for p in [2u64, 3, 7, 8, 16, 64] {
            let direct = mapping_1d(2016, p, DimFormat::Cyclic(Some(3)));
            assert_eq!(sym.instantiate(p, &reference.array_extents).unwrap(), direct);
        }
    }

    #[test]
    fn non_symbolic_shapes_decline() {
        use crate::{Alignment, AlignTarget, Distribution, Extents, GridId, Mapping, ProcGrid,
                    Template, TemplateId};
        // Single processor: normalize canonicalizes to FixedCoord.
        assert!(normalize_symbolic(&mapping_1d(16, 1, DimFormat::Block(None))).is_none());
        // Replicated mapping: no ArrayAxis.
        let repl = NormalizedMapping::replicated(
            GridId(0),
            Extents::new(&[4]),
            Extents::new(&[8]),
        );
        assert!(normalize_symbolic(&repl).is_none());
        // 2-D grid: declined (multi-axis formats are a follow-up).
        let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[8, 8]) };
        let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[2, 2]) };
        let nm = Mapping {
            align: Alignment::identity(TemplateId(0), 2),
            dist: Distribution::new(
                GridId(0),
                vec![DimFormat::Block(None), DimFormat::Block(None)],
            ),
        }
        .normalize(&Extents::new(&[8, 8]), &t, &g)
        .unwrap();
        assert!(normalize_symbolic(&nm).is_none());
        // Constant alignment: FixedCoord axis.
        let t1 = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[8]) };
        let g1 = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[4]) };
        let pinned = Mapping {
            align: Alignment { template: TemplateId(0), targets: vec![AlignTarget::Constant(5)] },
            dist: Distribution::new(GridId(0), vec![DimFormat::Block(None)]),
        }
        .normalize(&Extents::new(&[3]), &t1, &g1)
        .unwrap();
        assert!(normalize_symbolic(&pinned).is_none());
    }

    #[test]
    fn degenerate_target_p_instantiations_decline() {
        // CYCLIC(64) over extent 96: at P=4 it wraps (symbolic-accepted)
        // but at P=2 every... still two owners; use a shape that is
        // genuinely single-owner at a smaller template: BLOCK-like
        // block 64 over extent 96 has owners {0, 1} at any P >= 2, so
        // instead pin the decline with an image narrower than a block.
        let sym = SymbolicFormat {
            grid: GridId(0),
            stride: 1,
            offset: 0,
            block: 128,
            template_extent: 200,
        };
        // Image [0, 95] sits inside block 0 at every P: single owner.
        assert!(sym.instantiate(4, &Extents::new(&[96])).is_none());
        // P = 1 and P = 0 are never symbolic.
        assert!(sym.instantiate(1, &Extents::new(&[96])).is_none());
        assert!(sym.instantiate(0, &Extents::new(&[96])).is_none());
    }

    #[test]
    fn image_bounds_are_enforced() {
        let sym = SymbolicFormat {
            grid: GridId(0),
            stride: 2,
            offset: 1,
            block: 4,
            template_extent: 64,
        };
        // 2*(31)+1 = 63 < 64 fits; extent 33 overflows.
        assert!(sym.instantiate(4, &Extents::new(&[32])).is_some());
        assert!(sym.instantiate(4, &Extents::new(&[33])).is_none());
        // Negative strides need offset headroom.
        let neg = SymbolicFormat { stride: -1, offset: 31, ..sym };
        assert!(neg.instantiate(4, &Extents::new(&[32])).is_some());
        assert!(neg.instantiate(4, &Extents::new(&[33])).is_none());
    }

    #[test]
    fn format_pairs_intern_to_one_arc() {
        let a = SymbolicFormat {
            grid: GridId(0),
            stride: 1,
            offset: 0,
            block: 7,
            template_extent: 4099,
        };
        let b = SymbolicFormat { block: 3, ..a };
        let p1 = format_pair(a, b);
        let p2 = format_pair(a, b);
        assert!(Arc::ptr_eq(&p1, &p2));
        assert_eq!(Arc::strong_count(&p1), 2, "interner must not hold strong refs");
        assert!(!Arc::ptr_eq(&p1, &format_pair(b, a)), "direction matters");
    }

    #[test]
    fn dropped_format_pairs_are_reclaimed() {
        let interner = FormatPairInterner::new();
        let a = SymbolicFormat {
            grid: GridId(1),
            stride: 1,
            offset: 0,
            block: 5,
            template_extent: 555,
        };
        let b = SymbolicFormat { block: 2, ..a };
        let p1 = interner.intern(a, b);
        assert_eq!(interner.live_pairs(), 1);
        drop(p1);
        assert_eq!(interner.live_pairs(), 0, "weak table must not keep pairs alive");
        let p2 = interner.intern(a, b);
        assert_eq!(*p2, (a, b));
        assert_eq!(interner.live_pairs(), 1);
    }
}
