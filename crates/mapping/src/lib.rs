//! Two-level HPF mapping model: `array --ALIGN--> template --DISTRIBUTE--> processors`.
//!
//! This crate is the mathematical substrate of the PPoPP'97 paper
//! *Compiling Dynamic Mappings with Array Copies* (F. Coelho). Everything
//! the compiler decides — whether two mappings are "the same" (Fig. 2:
//! a redistribution that restores the initial mapping), which arrays a
//! template redistribution *impacts* (Fig. 3: all aligned arrays), which
//! processor owns a given element and at which local address — reduces to
//! the algebra implemented here.
//!
//! # Model
//!
//! * A [`ProcGrid`] is a named rectangular grid of abstract processors.
//! * A [`Template`] is a named rectangular index space used as an
//!   alignment target.
//! * An [`Alignment`] maps array axes affinely onto template axes
//!   (`ALIGN A(i,j) WITH T(j+1, 2*i)`), possibly replicating or pinning
//!   template axes.
//! * A [`Distribution`] maps template axes onto processor-grid axes with
//!   `BLOCK(b)` / `CYCLIC(b)` / `*` (collapsed) formats.
//! * A [`Mapping`] is the pair; [`Mapping::normalize`] composes the two
//!   levels into a canonical per-processor-axis [`NormalizedMapping`]
//!   with decidable *semantic* equality (same owner and same local
//!   address for every element).
//!
//! # Paper correspondence
//!
//! * `impact(A_i, v)` (App. B) is [`env::MappingEnv::realign`] /
//!   [`env::MappingEnv::redistribute`]: a realignment changes one array,
//!   a redistribution changes every array aligned to the template.
//! * Array *versions* `A_0, A_1, …` (Sec. 2, Fig. 7) are interned
//!   normalized mappings: [`env::VersionTable`] hands out a dense
//!   [`VersionId`] per distinct mapping of each array.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod align;
pub mod dist;
pub mod env;
pub mod error;
pub mod geometry;
pub mod grid;
pub mod intern;
pub mod intervals;
pub mod layout;
pub mod mapping;
pub mod symbolic;

pub mod testing;

pub use align::{AlignTarget, Alignment};
pub use dist::{DimFormat, Distribution};
pub use env::{ArrayInfo, MappingEnv, VersionTable};
pub use error::MappingError;
pub use geometry::{Extents, Point};
pub use grid::{ProcGrid, Template};
pub use intern::{MappingPair, PairInterner};
pub use intervals::{intersect_runs, PeriodicSet};
pub use layout::{DimLayout, Locus};
pub use mapping::{DimMap, DimSource, Mapping, NormalizedMapping};
pub use symbolic::{format_pair, normalize_symbolic, FormatPair, FormatPairInterner, SymbolicFormat};

/// Identifies an abstract (dynamic) array of the source program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

/// Identifies a template declared by `!HPF$ TEMPLATE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TemplateId(pub u32);

/// Identifies a processor grid declared by `!HPF$ PROCESSORS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GridId(pub u32);

/// A statically mapped *version* of an array: the paper's `A_k`.
///
/// `VersionId { array: A, index: 2 }` is the paper's `A_2`. Version
/// indices are dense per array, in order of first appearance during
/// mapping propagation, so the entry mapping is always version 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VersionId {
    /// The abstract array this is a copy of.
    pub array: ArrayId,
    /// Dense per-array version index (the paper's subscript).
    pub index: u32,
}

impl std::fmt::Display for VersionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "A{}_{}", self.array.0, self.index)
    }
}
