//! Periodic interval algebra: the closed form behind size-independent
//! redistribution planning.
//!
//! The index set a processor owns along one array dimension under a
//! composed HPF mapping — `{ a : ((stride·a + offset) / b) mod P = c }`
//! — is *periodic in `a`*: the owner of template cell `t` only depends
//! on `t mod b·P`, so the owned set repeats with period
//! `b·P / gcd(|stride|, b·P)`. A [`PeriodicSet`] stores one period's
//! worth of intervals plus the period and the extent window, which is
//! enough to
//!
//! * count its elements in O(|base|) regardless of the extent,
//! * count an intersection of two such sets over one *hyper-period*
//!   (`lcm` of the two periods) plus tail — never over the extent,
//! * lazily enumerate maximal runs (for block-level data movement),
//!
//! which is what makes redistribution *planning* O(P_src·P_dst) instead
//! of O(extent) (the data movement itself is necessarily O(extent), but
//! walks whole intervals, not elements).
//!
//! # Example
//!
//! `CYCLIC(2)` over 3 processors on a 24-cell dimension: processor 1
//! owns `{2,3, 8,9, 14,15, 20,21}` — the base interval `[2,4)` repeated
//! with period `b·P = 6`:
//!
//! ```
//! use hpfc_mapping::{DimLayout, PeriodicSet};
//!
//! let layout = DimLayout::new(24, 2, 3);          // CYCLIC(2) over 3 procs
//! let owned = PeriodicSet::owned(1, 0, layout, 1, 24);
//! assert_eq!(owned.period, 6);                    // b·P
//! assert_eq!(owned.base, vec![(2, 4)]);           // one period's intervals
//! assert_eq!(owned.count(), 8);                   // closed form, O(|base|)
//! assert_eq!(owned.count_below(9), 3);            // {2,3,8}
//! assert_eq!(
//!     owned.runs(0, 10).collect::<Vec<_>>(),      // lazy maximal runs
//!     vec![(2, 4), (8, 10)],
//! );
//!
//! // A stride-2 alignment halves the period: period = b·P / gcd(2, b·P).
//! let strided = PeriodicSet::owned(2, 0, layout, 1, 24);
//! assert_eq!(strided.period, 3);
//! ```
//!
//! Intersections never enumerate elements: two sets meet over one
//! *hyper-period* (`lcm` of their periods) plus a tail window:
//!
//! ```
//! use hpfc_mapping::{intersect_runs, DimLayout, PeriodicSet};
//!
//! let a = PeriodicSet::owned(1, 0, DimLayout::new(24, 2, 3), 1, 24); // period 6
//! let b = PeriodicSet::owned(1, 0, DimLayout::new(24, 4, 2), 0, 24); // period 8
//! // lcm(6, 8) = 24: one hyper-period covers the window.
//! assert_eq!(a.intersect_count(&b), 4);
//! let runs: Vec<_> = intersect_runs(&a, &b, 0, 24).collect();
//! assert_eq!(runs, vec![(2, 4), (8, 10)]);
//! assert_eq!(runs.iter().map(|(lo, hi)| hi - lo).sum::<u64>(), 4);
//! ```

use crate::layout::DimLayout;

/// Greatest common divisor.
pub fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple, saturating on overflow (a saturated period is
/// larger than any extent, which the window clamping handles).
pub fn lcm(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd(a, b)).saturating_mul(b)
}

fn floor_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) != (b < 0)) {
        q - 1
    } else {
        q
    }
}

fn ceil_div(a: i64, b: i64) -> i64 {
    let q = a / b;
    if (a % b != 0) && ((a < 0) == (b < 0)) {
        q + 1
    } else {
        q
    }
}

/// A periodic set of array indices restricted to a window `[0, extent)`:
/// the union over `k ≥ 0` of `base + k·period`, intersected with the
/// window.
///
/// Invariants: `base` is sorted, disjoint, non-adjacent (maximal
/// intervals), and contained in `[0, min(period, extent))`. When
/// `period ≥ extent` the set is not really periodic inside the window
/// and `base` simply lists its intervals.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PeriodicSet {
    /// Repetition period (≥ 1).
    pub period: u64,
    /// Window bound: the set lives in `[0, extent)`.
    pub extent: u64,
    /// One period of intervals (half-open, sorted, maximal).
    pub base: Vec<(u64, u64)>,
}

impl PeriodicSet {
    /// The empty set over `[0, extent)`.
    pub fn empty(extent: u64) -> Self {
        PeriodicSet { period: 1, extent, base: Vec::new() }
    }

    /// The full range `[0, extent)`.
    pub fn full(extent: u64) -> Self {
        let base = if extent == 0 { Vec::new() } else { vec![(0, 1)] };
        PeriodicSet { period: 1, extent, base }
    }

    /// The owned index set of grid coordinate `coord` along a dimension
    /// mapped by `t = stride·a + offset` into `layout`: in closed form,
    /// from one period of the layout — O(|stride| / gcd(|stride|, b·P))
    /// intervals, independent of `extent`.
    pub fn owned(stride: i64, offset: i64, layout: DimLayout, coord: u64, extent: u64) -> Self {
        assert!(stride != 0, "alignment stride is non-zero (validated)");
        let tp = layout.period(); // b·P
        let period = layout.alignment_period(stride);
        let window = period.min(extent);
        if window == 0 {
            return PeriodicSet { period: period.max(1), extent, base: Vec::new() };
        }
        // Template range swept by a ∈ [0, window).
        let last = stride * (window as i64 - 1) + offset;
        let (t_lo, t_hi) = (offset.min(last), offset.max(last)); // inclusive
        // Cycles k whose block [c·b + k·tp, c·b + b + k·tp) can touch it.
        let b = layout.block as i64;
        let c = coord as i64;
        let tp_i = tp as i64;
        let k_lo = floor_div(t_lo - c * b - (b - 1), tp_i);
        let k_hi = floor_div(t_hi - c * b, tp_i);
        let mut base = Vec::new();
        for k in k_lo..=k_hi {
            let lo = c * b + k * tp_i;
            let hi = lo + b;
            // { a : lo <= stride·a + offset < hi }
            let (a_lo, a_hi) = if stride > 0 {
                (ceil_div(lo - offset, stride), ceil_div(hi - offset, stride))
            } else {
                (floor_div(hi - offset, stride) + 1, floor_div(lo - offset, stride) + 1)
            };
            let a_lo = a_lo.max(0) as u64;
            let a_hi = (a_hi.max(0) as u64).min(window);
            if a_lo < a_hi {
                base.push((a_lo, a_hi));
            }
        }
        // Negative strides produce cycles in reverse a-order.
        base.sort_unstable();
        // Merge adjacent/overlapping intervals so runs are maximal.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(base.len());
        for (lo, hi) in base {
            match merged.last_mut() {
                Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        PeriodicSet { period, extent, base: merged }
    }

    /// Whether the set covers its whole window.
    pub fn is_full(&self) -> bool {
        self.base.len() == 1
            && self.base[0].0 == 0
            && self.base[0].1 >= self.period.min(self.extent)
    }

    /// Elements per period (tail periods excluded).
    fn per_period(&self) -> u64 {
        self.base.iter().map(|(a, b)| b - a).sum()
    }

    /// Number of elements in `[0, x)` — closed form, O(|base|).
    pub fn count_below(&self, x: u64) -> u64 {
        let x = x.min(self.extent);
        if x == 0 || self.base.is_empty() {
            return 0;
        }
        let (full, rem) = (x / self.period, x % self.period);
        let partial: u64 =
            self.base.iter().map(|&(a, b)| b.min(rem).saturating_sub(a).min(b - a)).sum();
        full * self.per_period() + partial
    }

    /// Number of elements in `[lo, hi)` — closed form.
    pub fn count_in(&self, lo: u64, hi: u64) -> u64 {
        self.count_below(hi) - self.count_below(lo)
    }

    /// Total number of elements in the window.
    pub fn count(&self) -> u64 {
        self.count_below(self.extent)
    }

    /// Maximal contiguous runs of the set within `[lo, hi)`, in order.
    /// Runs that span period boundaries are coalesced, so iterating is
    /// O(number of maximal runs), never O(elements).
    pub fn runs(&self, lo: u64, hi: u64) -> Runs<'_> {
        let hi = hi.min(self.extent);
        Runs { set: self, lo, hi, cursor: lo.min(hi) }
    }

    /// The first raw (uncoalesced, unclipped) interval whose end lies
    /// strictly after `x` (internal helper for [`Runs`]).
    fn next_raw(&self, x: u64) -> Option<(u64, u64)> {
        if self.base.is_empty() {
            return None;
        }
        let k = x / self.period;
        for &(a, b) in &self.base {
            if k * self.period + b > x {
                return Some((k * self.period + a, k * self.period + b));
            }
        }
        // Next period's first interval.
        let (a, b) = self.base[0];
        Some(((k + 1) * self.period + a, (k + 1) * self.period + b))
    }

    /// The first maximal (coalesced) run whose end lies strictly after
    /// `x`, unclipped — O(|base|), a closed-form *seek* (callers jump
    /// straight to an arbitrary position; nothing is stepped through).
    /// `limit` bounds the full-set shortcut only.
    fn run_after(&self, x: u64, limit: u64) -> Option<(u64, u64)> {
        if self.is_full() {
            let end = limit.min(self.extent);
            return (x < end).then_some((0, end));
        }
        let (lo, mut hi) = self.next_raw(x)?;
        // Coalesce across the period boundary: base intervals are
        // maximal within a period, so at most one merge happens.
        while let Some((nlo, nhi)) = self.next_raw(hi) {
            if nlo != hi {
                break;
            }
            hi = nhi;
        }
        Some((lo, hi))
    }

    /// Count of `self ∩ other` over the shared window — closed form:
    /// over one hyper-period plus tail when the hyper-period fits the
    /// window, else by walking the runs of the sparser-run side and
    /// counting the other side per run. Never enumerates elements.
    pub fn intersect_count(&self, other: &PeriodicSet) -> u64 {
        let n = self.extent.min(other.extent);
        if n == 0 || self.base.is_empty() || other.base.is_empty() {
            return 0;
        }
        let h = lcm(self.period, other.period);
        if h > 0 && h <= n {
            // Periodic path: one hyper-period plus the tail.
            let c_h = self.runs(0, h).map(|(a, b)| other.count_in(a, b)).sum::<u64>();
            let tail = n % h;
            let c_t = if tail == 0 {
                0
            } else {
                self.runs(0, tail).map(|(a, b)| other.count_in(a, b)).sum::<u64>()
            };
            (n / h) * c_h + c_t
        } else {
            // Hyper-period exceeds the window: iterate whichever side
            // has fewer runs inside it (a BLOCK side has O(1)).
            let runs_self = self.runs_within(n);
            let runs_other = other.runs_within(n);
            if runs_self <= runs_other {
                self.runs(0, n).map(|(a, b)| other.count_in(a, b)).sum()
            } else {
                other.runs(0, n).map(|(a, b)| self.count_in(a, b)).sum()
            }
        }
    }

    /// Upper bound on the number of maximal runs within `[0, x)`.
    fn runs_within(&self, x: u64) -> u64 {
        if self.base.is_empty() {
            return 0;
        }
        (x / self.period + 1).saturating_mul(self.base.len() as u64)
    }
}

impl std::fmt::Display for PeriodicSet {
    /// Compact set-builder notation used by the SPMD renderer:
    /// `{}` for the empty set, `{[0,n)}` for the full window,
    /// `{[1,2)+4k}` for a genuinely periodic set (the base intervals,
    /// repeated with period 4), and a plain interval list when the
    /// period does not fit the window (the set never wraps).
    ///
    /// ```
    /// use hpfc_mapping::{DimLayout, PeriodicSet};
    /// // CYCLIC(1) over 4 processors, coordinate 1, window [0,16).
    /// let l = DimLayout::new(16, 1, 4);
    /// let s = PeriodicSet::owned(1, 0, l, 1, 16);
    /// assert_eq!(s.to_string(), "{[1,2)+4k}");
    /// assert_eq!(PeriodicSet::full(16).to_string(), "{[0,16)}");
    /// assert_eq!(PeriodicSet::empty(16).to_string(), "{}");
    /// ```
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.base.is_empty() {
            return write!(f, "{{}}");
        }
        if self.is_full() {
            return write!(f, "{{[0,{})}}", self.extent);
        }
        write!(f, "{{")?;
        for (i, (a, b)) in self.base.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "[{a},{b})")?;
        }
        if self.period < self.extent {
            write!(f, "+{}k", self.period)?;
        }
        write!(f, "}}")
    }
}

/// Iterator over the maximal runs of a [`PeriodicSet`] within a range.
pub struct Runs<'a> {
    set: &'a PeriodicSet,
    lo: u64,
    hi: u64,
    cursor: u64,
}

impl Iterator for Runs<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        if self.cursor >= self.hi {
            return None;
        }
        let (lo, hi) = self.set.run_after(self.cursor, self.hi)?;
        if lo >= self.hi {
            self.cursor = self.hi;
            return None;
        }
        let run = (lo.max(self.cursor).max(self.lo), hi.min(self.hi));
        self.cursor = run.1;
        Some(run)
    }
}

/// Maximal runs of the intersection of two periodic sets within
/// `[lo, hi)` — the block-level copy engine's unit of work.
///
/// Seeks instead of stepping: when one side's run ends far before the
/// other side's next run begins, the cursor jumps straight there
/// (closed form), so a sparse side never pays for a dense side's runs.
pub struct IntersectRuns<'a> {
    a: &'a PeriodicSet,
    b: &'a PeriodicSet,
    cursor: u64,
    hi: u64,
}

/// Lazy intersection runs of `a ∩ b` over `[lo, hi)`.
pub fn intersect_runs<'a>(
    a: &'a PeriodicSet,
    b: &'a PeriodicSet,
    lo: u64,
    hi: u64,
) -> IntersectRuns<'a> {
    let hi = hi.min(a.extent).min(b.extent);
    IntersectRuns { a, b, cursor: lo.min(hi), hi }
}

impl Iterator for IntersectRuns<'_> {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        loop {
            if self.cursor >= self.hi {
                return None;
            }
            let (alo, ahi) = self.a.run_after(self.cursor, self.hi)?;
            if alo >= self.hi {
                return None;
            }
            let start = self.cursor.max(alo);
            let (blo, bhi) = self.b.run_after(start, self.hi)?;
            if blo >= self.hi {
                return None;
            }
            if blo >= ahi {
                // `a`'s run ends before `b`'s next run begins: seek `a`
                // directly to `b`'s position.
                self.cursor = blo;
                continue;
            }
            let lo = start.max(blo);
            let hi = ahi.min(bhi).min(self.hi);
            self.cursor = hi;
            return Some((lo, hi));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute-force membership for cross-checking.
    fn naive(stride: i64, offset: i64, layout: DimLayout, coord: u64, extent: u64) -> Vec<u64> {
        (0..extent)
            .filter(|&a| {
                let t = stride * a as i64 + offset;
                t >= 0 && layout.owner(t as u64) == coord
            })
            .collect()
    }

    fn expand(s: &PeriodicSet) -> Vec<u64> {
        s.runs(0, s.extent).flat_map(|(a, b)| a..b).collect()
    }

    #[test]
    fn owned_matches_naive_identity() {
        for &(n, b, p) in &[(100u64, 25u64, 4u64), (10, 1, 4), (14, 3, 2), (17, 5, 3), (64, 4, 16)]
        {
            let l = DimLayout::new(n, b, p);
            for c in 0..p {
                let s = PeriodicSet::owned(1, 0, l, c, n);
                assert_eq!(expand(&s), naive(1, 0, l, c, n), "layout {l} coord {c}");
                assert_eq!(s.count(), naive(1, 0, l, c, n).len() as u64);
            }
        }
    }

    #[test]
    fn owned_matches_naive_strided() {
        // Strides and offsets, including negative strides.
        for &(stride, offset, text, b, p, n) in &[
            (2i64, 1i64, 24u64, 3u64, 4u64, 10u64),
            (3, 0, 30, 2, 5, 10),
            (-1, 9, 10, 2, 3, 10),
            (-2, 19, 20, 3, 2, 10),
            (5, 2, 60, 4, 3, 11),
        ] {
            let l = DimLayout::new(text, b, p);
            for c in 0..p {
                let s = PeriodicSet::owned(stride, offset, l, c, n);
                assert_eq!(
                    expand(&s),
                    naive(stride, offset, l, c, n),
                    "stride {stride} offset {offset} layout {l} coord {c}"
                );
            }
        }
    }

    #[test]
    fn period_is_extent_independent() {
        let l = DimLayout::new(1 << 20, 4, 8);
        let s = PeriodicSet::owned(1, 0, l, 3, 1 << 20);
        assert_eq!(s.period, 32);
        assert_eq!(s.base, vec![(12, 16)]);
        assert_eq!(s.count(), (1 << 20) / 8);
    }

    #[test]
    fn full_set_yields_one_run() {
        let s = PeriodicSet::full(1000);
        assert_eq!(s.runs(0, 1000).collect::<Vec<_>>(), vec![(0, 1000)]);
        assert_eq!(s.count(), 1000);
        assert_eq!(s.count_in(10, 20), 10);
    }

    #[test]
    fn runs_coalesce_across_periods() {
        // base [(0,1),(2,3)] period 3: 2 and 0-of-next-period are
        // adjacent, so [2,4) must come out as one run.
        let s = PeriodicSet { period: 3, extent: 9, base: vec![(0, 1), (2, 3)] };
        let runs: Vec<_> = s.runs(0, 9).collect();
        assert_eq!(runs, vec![(0, 1), (2, 4), (5, 7), (8, 9)]);
        assert_eq!(s.count(), 6);
    }

    #[test]
    fn intersect_count_matches_naive() {
        let cases = [
            (DimLayout::new(64, 4, 4), DimLayout::new(64, 1, 4), 64u64),
            (DimLayout::new(60, 15, 4), DimLayout::new(60, 2, 3), 60),
            (DimLayout::new(24, 3, 4), DimLayout::new(24, 5, 2), 23),
        ];
        for (ls, ld, n) in cases {
            for cs in 0..ls.nprocs {
                for cd in 0..ld.nprocs {
                    let a = PeriodicSet::owned(1, 0, ls, cs, n);
                    let b = PeriodicSet::owned(1, 0, ld, cd, n);
                    let na: std::collections::BTreeSet<u64> =
                        naive(1, 0, ls, cs, n).into_iter().collect();
                    let nb: std::collections::BTreeSet<u64> =
                        naive(1, 0, ld, cd, n).into_iter().collect();
                    let want = na.intersection(&nb).count() as u64;
                    assert_eq!(a.intersect_count(&b), want, "{ls} x {ld} ({cs},{cd})");
                    let got: u64 = intersect_runs(&a, &b, 0, n).map(|(x, y)| y - x).sum();
                    assert_eq!(got, want);
                }
            }
        }
    }

    #[test]
    fn intersect_runs_match_membership() {
        let ls = DimLayout::new(40, 3, 3);
        let ld = DimLayout::new(80, 2, 4);
        let a = PeriodicSet::owned(1, 0, ls, 1, 37);
        let b = PeriodicSet::owned(2, 3, ld, 2, 37);
        let want: Vec<u64> = {
            let na: std::collections::BTreeSet<u64> = naive(1, 0, ls, 1, 37).into_iter().collect();
            naive(2, 3, ld, 2, 37).into_iter().filter(|x| na.contains(x)).collect()
        };
        let got: Vec<u64> = intersect_runs(&a, &b, 0, 37).flat_map(|(x, y)| x..y).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn gcd_lcm_basics() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(u64::MAX, 2), u64::MAX); // saturates
    }
}
