//! Small multi-dimensional index-space helpers shared by the whole stack.
//!
//! Arrays, templates and processor grids are all rectangular index
//! spaces; [`Extents`] is their shape and [`Point`] an index into one.
//! Indices are zero-based throughout the compiler (the front-end shifts
//! Fortran's one-based declarations when lowering).

/// The shape of a rectangular index space: one extent per dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Extents(pub Vec<u64>);

/// A point in a rectangular index space (zero-based).
pub type Point = Vec<u64>;

impl Extents {
    /// Shape with the given per-dimension sizes.
    pub fn new(dims: &[u64]) -> Self {
        Extents(dims.to_vec())
    }

    /// Number of dimensions (the *rank*).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of points (product of extents). Saturates on overflow.
    pub fn volume(&self) -> u64 {
        self.0.iter().copied().fold(1u64, |a, b| a.saturating_mul(b))
    }

    /// Extent of dimension `d`. Panics if out of range.
    pub fn extent(&self, d: usize) -> u64 {
        self.0[d]
    }

    /// Whether `p` lies inside this space (correct rank, all coords in range).
    pub fn contains(&self, p: &[u64]) -> bool {
        p.len() == self.rank() && p.iter().zip(&self.0).all(|(&i, &n)| i < n)
    }

    /// Row-major linearization of `p`. Panics if `p` is out of range.
    pub fn linearize(&self, p: &[u64]) -> u64 {
        assert!(self.contains(p), "point {p:?} outside extents {:?}", self.0);
        let mut idx = 0u64;
        for (d, &i) in p.iter().enumerate() {
            idx = idx * self.0[d] + i;
        }
        idx
    }

    /// Inverse of [`Extents::linearize`].
    pub fn delinearize(&self, mut idx: u64) -> Point {
        let mut p = vec![0u64; self.rank()];
        for d in (0..self.rank()).rev() {
            p[d] = idx % self.0[d];
            idx /= self.0[d];
        }
        p
    }

    /// Iterate over every point in row-major order.
    ///
    /// Intended for tests and oracles; production code uses closed-form
    /// index math from [`crate::layout`].
    pub fn points(&self) -> impl Iterator<Item = Point> + '_ {
        (0..self.volume()).map(move |i| self.delinearize(i))
    }
}

impl std::fmt::Display for Extents {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

/// Ceiling division on `u64`, the default HPF `BLOCK` size formula
/// `⌈n/p⌉`.
pub fn ceil_div(n: u64, d: u64) -> u64 {
    assert!(d > 0, "division by zero extent");
    n.div_ceil(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearize_roundtrip() {
        let e = Extents::new(&[3, 4, 5]);
        for i in 0..e.volume() {
            assert_eq!(e.linearize(&e.delinearize(i)), i);
        }
    }

    #[test]
    fn volume_and_rank() {
        let e = Extents::new(&[7, 9]);
        assert_eq!(e.volume(), 63);
        assert_eq!(e.rank(), 2);
        assert_eq!(e.extent(1), 9);
    }

    #[test]
    fn points_enumerates_in_row_major_order() {
        let e = Extents::new(&[2, 2]);
        let pts: Vec<_> = e.points().collect();
        assert_eq!(pts, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
    }

    #[test]
    fn contains_checks_rank_and_range() {
        let e = Extents::new(&[2, 3]);
        assert!(e.contains(&[1, 2]));
        assert!(!e.contains(&[2, 0]));
        assert!(!e.contains(&[0]));
    }

    #[test]
    fn ceil_div_edges() {
        assert_eq!(ceil_div(0, 4), 0);
        assert_eq!(ceil_div(1, 4), 1);
        assert_eq!(ceil_div(4, 4), 1);
        assert_eq!(ceil_div(5, 4), 2);
    }

    #[test]
    #[should_panic]
    fn linearize_out_of_range_panics() {
        Extents::new(&[2, 2]).linearize(&[2, 0]);
    }
}
