//! Errors raised by the mapping algebra.

use crate::{ArrayId, GridId, TemplateId};

/// Everything that can go wrong while declaring or composing mappings.
///
/// These are *user-program* errors (bad directives), not compiler bugs;
/// the front-end converts them into source diagnostics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MappingError {
    /// An `ALIGN` whose rank bookkeeping does not match the template:
    /// e.g. a template axis referenced twice, or an array axis used in
    /// two alignment subscripts.
    MalformedAlignment {
        /// Human-readable explanation.
        reason: String,
    },
    /// A `DISTRIBUTE` with more non-collapsed formats than the target
    /// grid has dimensions, or a zero block size.
    MalformedDistribution {
        /// Human-readable explanation.
        reason: String,
    },
    /// An aligned element would fall outside the template.
    AlignmentOutOfTemplate {
        /// The offending array.
        array: ArrayId,
        /// The alignment target.
        template: TemplateId,
        /// Human-readable explanation (which axis, which bound).
        reason: String,
    },
    /// HPF requires `BLOCK(b)` to cover the whole dimension in one
    /// cycle: `b * nprocs >= extent`.
    BlockTooSmall {
        /// Declared block size.
        block: u64,
        /// Dimension extent that must be covered.
        extent: u64,
        /// Processors available along the distributed axis.
        nprocs: u64,
    },
    /// Unknown entity referenced by a directive.
    UnknownEntity {
        /// Name as written in the source.
        name: String,
    },
    /// A `REDISTRIBUTE`/`REALIGN` names an object that was not declared
    /// `DYNAMIC` (the paper requires explicit dynamicity).
    NotDynamic {
        /// Name as written in the source.
        name: String,
    },
    /// Distribution targets a grid whose rank does not match the number
    /// of distributed (non-collapsed) template dimensions.
    GridRankMismatch {
        /// The target grid.
        grid: GridId,
        /// Non-collapsed formats in the directive.
        distributed_dims: usize,
        /// Rank of the grid.
        grid_rank: usize,
    },
}

impl std::fmt::Display for MappingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MappingError::MalformedAlignment { reason } => {
                write!(f, "malformed alignment: {reason}")
            }
            MappingError::MalformedDistribution { reason } => {
                write!(f, "malformed distribution: {reason}")
            }
            MappingError::AlignmentOutOfTemplate { array, template, reason } => write!(
                f,
                "alignment of array #{} overflows template #{}: {reason}",
                array.0, template.0
            ),
            MappingError::BlockTooSmall { block, extent, nprocs } => write!(
                f,
                "BLOCK({block}) over {nprocs} processors cannot cover extent {extent} \
                 (needs block*nprocs >= extent)"
            ),
            MappingError::UnknownEntity { name } => write!(f, "unknown mapping entity `{name}`"),
            MappingError::NotDynamic { name } => {
                write!(f, "`{name}` is remapped but was not declared DYNAMIC")
            }
            MappingError::GridRankMismatch { grid, distributed_dims, grid_rank } => write!(
                f,
                "distribution has {distributed_dims} distributed dims but grid #{} has rank {}",
                grid.0, grid_rank
            ),
        }
    }
}

impl std::error::Error for MappingError {}
