//! Test-support constructors for identity-aligned mappings.
//!
//! Tests and benches across the workspace all need the same fixture: a
//! 1-D (or square 2-D) array identity-aligned to a template and
//! distributed over a 1-D grid. Building that takes five types and a
//! `normalize` call; this module is the one place the boilerplate
//! lives, so a change to mapping construction touches one file instead
//! of every test module. Not part of the public compilation API.

use crate::{
    Alignment, DimFormat, Distribution, Extents, GridId, Mapping, NormalizedMapping, ProcGrid,
    Template, TemplateId,
};

/// An `n`-element array identity-aligned to an `n`-element template,
/// distributed `fmt` over `p` processors.
pub fn mapping_1d(n: u64, p: u64, fmt: DimFormat) -> NormalizedMapping {
    let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[n]) };
    let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[p]) };
    Mapping {
        align: Alignment::identity(TemplateId(0), 1),
        dist: Distribution::new(GridId(0), vec![fmt]),
    }
    .normalize(&Extents::new(&[n]), &t, &g)
    .expect("well-formed 1-D fixture mapping")
}

/// An `n × n` array identity-aligned to an `n × n` template,
/// distributed `fmts` (one format per dimension) over `p` processors.
pub fn mapping_2d(n: u64, p: u64, fmts: Vec<DimFormat>) -> NormalizedMapping {
    let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[n, n]) };
    let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[p]) };
    Mapping {
        align: Alignment::identity(TemplateId(0), 2),
        dist: Distribution::new(GridId(0), fmts),
    }
    .normalize(&Extents::new(&[n, n]), &t, &g)
    .expect("well-formed 2-D fixture mapping")
}
