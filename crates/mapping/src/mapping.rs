//! The two-level [`Mapping`] (alignment ∘ distribution) and its
//! composed, canonical form [`NormalizedMapping`].
//!
//! The paper's central observation (Sec. 1, "HPF two-level mapping makes
//! the reaching mapping problem not as simple as the reaching definition
//! problem") is that neither the alignment nor the distribution alone
//! identifies where data lives: the compiler must compose both to decide
//! whether two program points see *the same* placement. Normalization is
//! that composition. Fig. 2's "redistribute restores the initial
//! mapping" is recognized here: a transposing realignment followed by a
//! transposed distribution composes back to the original placement
//! function and compares equal.
//!
//! Equality on [`NormalizedMapping`] is *structural after
//! canonicalization* and is sound: structurally equal mappings place
//! every element on the same processor with the same local address
//! (property-tested against the pointwise oracle
//! [`NormalizedMapping::equiv_pointwise`]). It may miss exotic
//! coincidences (two different formulas that happen to coincide on a
//! given extent); missing one only costs an avoidable copy, never
//! correctness — the same conservativeness the paper accepts for its
//! static analyses.

use crate::align::{AlignTarget, Alignment};
use crate::dist::Distribution;
use crate::error::MappingError;
use crate::geometry::Extents;
use crate::grid::{ProcGrid, Template};
use crate::layout::{DimLayout, Locus};
use crate::GridId;

/// An array's mapping as written: its alignment plus the current
/// distribution of its template.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mapping {
    /// First level: array → template.
    pub align: Alignment,
    /// Second level: template → processors.
    pub dist: Distribution,
}

/// What feeds one processor-grid axis in a composed mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DimSource {
    /// The axis coordinate is a function of one array axis:
    /// `coord = ((stride*a + offset) / block) mod nprocs`.
    ArrayAxis {
        /// Array dimension driving this grid axis.
        dim: usize,
        /// Alignment stride.
        stride: i64,
        /// Alignment offset.
        offset: i64,
    },
    /// The whole array sits at one grid coordinate along this axis
    /// (constant alignment, degenerate layout, or single processor).
    FixedCoord(u64),
    /// The array is replicated along this axis.
    Replicated,
}

/// The composed placement along one processor-grid axis.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DimMap {
    /// What drives this grid axis.
    pub source: DimSource,
    /// Block-cyclic layout of the underlying template dimension; `None`
    /// when `source` is [`DimSource::FixedCoord`] or
    /// [`DimSource::Replicated`] (no per-element math remains).
    pub layout: Option<DimLayout>,
}

/// Canonical composed mapping: for each grid axis, how the array feeds
/// it; plus the array extents (local addressing is derived from this).
///
/// Local storage model: on processor `p`, the local copy holds, for each
/// array dimension, the sorted list of indices it owns along that
/// dimension (all indices for undistributed dimensions); elements are
/// stored row-major over those lists. Two structurally equal
/// `NormalizedMapping`s therefore agree on owners *and* local addresses.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NormalizedMapping {
    /// Target grid identity.
    pub grid: GridId,
    /// Target grid shape.
    pub grid_shape: Extents,
    /// One entry per grid axis.
    pub axes: Vec<DimMap>,
    /// The array's extents.
    pub array_extents: Extents,
}

impl Mapping {
    /// Compose and canonicalize this mapping for an array of shape
    /// `array_extents`, aligned to `template`, distributed on `grid`.
    pub fn normalize(
        &self,
        array_extents: &Extents,
        template: &Template,
        grid: &ProcGrid,
    ) -> Result<NormalizedMapping, MappingError> {
        if self.align.targets.len() != template.shape.rank() {
            return Err(MappingError::MalformedAlignment {
                reason: format!(
                    "alignment has {} targets but template rank is {}",
                    self.align.targets.len(),
                    template.shape.rank()
                ),
            });
        }
        if self.dist.formats.len() != template.shape.rank() {
            return Err(MappingError::MalformedDistribution {
                reason: format!(
                    "distribution has {} formats but template rank is {}",
                    self.dist.formats.len(),
                    template.shape.rank()
                ),
            });
        }
        self.align
            .validate(array_extents.rank())
            .map_err(|reason| MappingError::MalformedAlignment { reason })?;
        // More distributed dims than grid axes is an error; *fewer* is
        // allowed internally: the unused grid axes replicate the array
        // (how we encode unmapped/replicated objects uniformly).
        if self.dist.distributed_rank() > grid.shape.rank() {
            return Err(MappingError::GridRankMismatch {
                grid: grid.id,
                distributed_dims: self.dist.distributed_rank(),
                grid_rank: grid.shape.rank(),
            });
        }

        let proc_axis = self.dist.proc_axis_of_dim();
        let mut axes: Vec<Option<DimMap>> = vec![None; grid.shape.rank()];

        for (tdim, fmt) in self.dist.formats.iter().enumerate() {
            let Some(axis) = proc_axis[tdim] else { continue }; // collapsed: placement-neutral
            let extent = template.shape.extent(tdim);
            let nprocs = grid.shape.extent(axis);
            let block = fmt
                .effective_block(extent, nprocs)
                .expect("distributed format has a block size");
            if block == 0 {
                return Err(MappingError::MalformedDistribution {
                    reason: format!("zero block size on template dim {tdim}"),
                });
            }
            // HPF rule: BLOCK(b) must cover the dimension in one cycle.
            if matches!(fmt, crate::dist::DimFormat::Block(_)) && block * nprocs < extent {
                return Err(MappingError::BlockTooSmall { block, extent, nprocs });
            }
            let layout = DimLayout::new(extent, block, nprocs);

            let dim_map = match self.align.targets[tdim] {
                AlignTarget::Replicate => {
                    DimMap { source: DimSource::Replicated, layout: None }
                }
                AlignTarget::Constant(c) => {
                    if c < 0 || c as u64 >= extent {
                        return Err(MappingError::MalformedAlignment {
                            reason: format!(
                                "constant alignment {c} outside template dim {tdim} (extent {extent})"
                            ),
                        });
                    }
                    DimMap { source: DimSource::FixedCoord(layout.owner(c as u64)), layout: None }
                }
                AlignTarget::Axis { array_dim, stride, offset } => {
                    let n = array_extents.extent(array_dim);
                    // Validate the image of [0, n) stays inside the template.
                    let lo = offset.min(stride * (n as i64 - 1) + offset);
                    let hi = offset.max(stride * (n as i64 - 1) + offset);
                    if n > 0 && (lo < 0 || hi as u64 >= extent) {
                        return Err(MappingError::MalformedAlignment {
                            reason: format!(
                                "image [{lo},{hi}] of array dim {array_dim} outside \
                                 template dim {tdim} (extent {extent})"
                            ),
                        });
                    }
                    // Canonicalize degenerate placements to FixedCoord so
                    // that e.g. BLOCK(100) and BLOCK(200) over a 50-cell
                    // single-block dimension compare equal.
                    let single_owner = nprocs == 1
                        || (n > 0 && layout.owner(lo as u64) == layout.owner(hi as u64)
                            && (lo as u64) / block == (hi as u64) / block);
                    if single_owner {
                        let coord = if n > 0 { layout.owner(lo as u64) } else { 0 };
                        DimMap { source: DimSource::FixedCoord(coord), layout: None }
                    } else {
                        DimMap {
                            source: DimSource::ArrayAxis { dim: array_dim, stride, offset },
                            layout: Some(layout),
                        }
                    }
                }
            };
            axes[axis] = Some(dim_map);
        }

        Ok(NormalizedMapping {
            grid: grid.id,
            grid_shape: grid.shape.clone(),
            axes: axes
                .into_iter()
                .map(|a| a.unwrap_or(DimMap { source: DimSource::Replicated, layout: None }))
                .collect(),
            array_extents: array_extents.clone(),
        })
    }
}

impl NormalizedMapping {
    /// A fully replicated mapping (every processor holds the array) —
    /// used for scalars and unmapped locals.
    pub fn replicated(grid: GridId, grid_shape: Extents, array_extents: Extents) -> Self {
        let axes = (0..grid_shape.rank())
            .map(|_| DimMap { source: DimSource::Replicated, layout: None })
            .collect();
        NormalizedMapping { grid, grid_shape, axes, array_extents }
    }

    /// The placement of array point `p`.
    pub fn locus(&self, p: &[u64]) -> Locus {
        let proc = self
            .axes
            .iter()
            .map(|ax| match ax.source {
                DimSource::Replicated => None,
                DimSource::FixedCoord(q) => Some(q),
                DimSource::ArrayAxis { dim, stride, offset } => {
                    let t = stride * p[dim] as i64 + offset;
                    debug_assert!(t >= 0, "alignment image validated non-negative");
                    Some(ax.layout.expect("axis source has layout").owner(t as u64))
                }
            })
            .collect();
        Locus { proc }
    }

    /// Row-major ranks of all processors owning point `p` (replication
    /// yields several).
    pub fn owners(&self, p: &[u64]) -> Vec<u64> {
        self.locus(p).owner_ranks(&self.grid_shape)
    }

    /// Whether the processor with row-major rank `rank` owns point `p`.
    pub fn is_owned(&self, p: &[u64], rank: u64) -> bool {
        let coords = self.grid_shape.delinearize(rank);
        self.locus(p)
            .proc
            .iter()
            .zip(&coords)
            .all(|(want, &have)| want.is_none_or(|w| w == have))
    }

    /// Sorted array indices owned along array dimension `d` by the
    /// processor at grid coordinates `coords`.
    ///
    /// For a dimension that does not drive any grid axis this is the
    /// full range `0..extent(d)`. If some grid axis pins the array away
    /// from `coords` entirely (a `FixedCoord` mismatch) the processor
    /// owns nothing; that is a *whole-array* condition handled by
    /// [`NormalizedMapping::holds_anything`], not per-dimension.
    pub fn owned_indices_along(&self, d: usize, coords: &[u64]) -> Vec<u64> {
        let n = self.array_extents.extent(d);
        for (axis, ax) in self.axes.iter().enumerate() {
            if let DimSource::ArrayAxis { dim, stride, offset } = ax.source {
                if dim == d {
                    let layout = ax.layout.expect("axis source has layout");
                    // Closed form: expand the periodic owned set's runs
                    // (O(count)) instead of testing the owner of every
                    // index (O(extent)).
                    let set = crate::intervals::PeriodicSet::owned(
                        stride,
                        offset,
                        layout,
                        coords[axis],
                        n,
                    );
                    let mut out = Vec::with_capacity(set.count() as usize);
                    // Unrolls the base pattern by hand instead of going
                    // through `set.runs(0, n)`: this is the hot path of
                    // version allocation, and the run iterator's
                    // per-run seek costs ~25% of redistribution wall
                    // time for CYCLIC(1) layouts (adjacent-run
                    // coalescing does not matter for list building).
                    let mut start = 0u64;
                    while start < n {
                        for &(a, b) in &set.base {
                            let lo = start + a;
                            if lo >= n {
                                break;
                            }
                            out.extend(lo..(start + b).min(n));
                        }
                        if set.period >= n {
                            break;
                        }
                        start += set.period;
                    }
                    return out;
                }
            }
        }
        (0..n).collect()
    }

    /// Whether the processor at `coords` holds any part of the array
    /// (false only when a `FixedCoord` axis pins the array elsewhere).
    pub fn holds_anything(&self, coords: &[u64]) -> bool {
        self.axes.iter().enumerate().all(|(axis, ax)| match ax.source {
            DimSource::FixedCoord(q) => coords[axis] == q,
            _ => true,
        })
    }

    /// Number of elements stored by the processor with rank `rank`.
    pub fn local_volume(&self, rank: u64) -> u64 {
        let coords = self.grid_shape.delinearize(rank);
        if !self.holds_anything(&coords) {
            return 0;
        }
        (0..self.array_extents.rank())
            .map(|d| self.owned_indices_along(d, &coords).len() as u64)
            .product()
    }

    /// Pointwise equivalence oracle: same owners *and* same local
    /// ordering for every element. O(P·n) — tests only.
    pub fn equiv_pointwise(&self, other: &NormalizedMapping) -> bool {
        if self.array_extents != other.array_extents
            || self.grid_shape.volume() != other.grid_shape.volume()
        {
            return false;
        }
        for p in self.array_extents.points() {
            let mut a = self.owners(&p);
            let mut b = other.owners(&p);
            a.sort_unstable();
            b.sort_unstable();
            if a != b {
                return false;
            }
        }
        // Same owners everywhere; local ordering is derived from global
        // index order per dimension, so it agrees iff per-proc owned
        // sets agree — which the loop above already guarantees.
        true
    }

    /// Total bytes for one local copy on `rank`, for `elem_size`-byte
    /// elements.
    pub fn local_bytes(&self, rank: u64, elem_size: u64) -> u64 {
        self.local_volume(rank) * elem_size
    }
}

impl std::fmt::Display for NormalizedMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for (i, ax) in self.axes.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            match ax.source {
                DimSource::Replicated => write!(f, "repl")?,
                DimSource::FixedCoord(q) => write!(f, "@{q}")?,
                DimSource::ArrayAxis { dim, stride, offset } => {
                    write!(f, "a{dim}*{stride}+{offset} {}", ax.layout.unwrap())?
                }
            }
        }
        write!(f, "]{}", self.array_extents)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::DimFormat;
    use crate::{TemplateId};

    fn setup(
        tshape: &[u64],
        gshape: &[u64],
    ) -> (Template, ProcGrid) {
        (
            Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(tshape) },
            ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(gshape) },
        )
    }

    #[test]
    fn row_block_mapping() {
        let (t, g) = setup(&[8, 8], &[4]);
        let m = Mapping {
            align: Alignment::identity(TemplateId(0), 2),
            dist: Distribution::new(GridId(0), vec![DimFormat::Block(None), DimFormat::Collapsed]),
        };
        let n = m.normalize(&Extents::new(&[8, 8]), &t, &g).unwrap();
        assert_eq!(n.owners(&[0, 5]), vec![0]);
        assert_eq!(n.owners(&[3, 0]), vec![1]);
        assert_eq!(n.owners(&[7, 7]), vec![3]);
        assert_eq!(n.local_volume(0), 16); // 2 rows x 8 cols
    }

    #[test]
    fn fig2_transposed_realign_plus_redistribute_restores_mapping() {
        // Paper Fig. 2: C identity-aligned, B distributed (BLOCK,*).
        // realign C(i,j) with B(j,i), then redistribute B(*,BLOCK):
        // C's composed placement is row-block both before and after.
        let (t, g) = setup(&[8, 8], &[4]);
        let before = Mapping {
            align: Alignment::identity(TemplateId(0), 2),
            dist: Distribution::new(GridId(0), vec![DimFormat::Block(None), DimFormat::Collapsed]),
        };
        let after = Mapping {
            align: Alignment::transpose2(TemplateId(0)),
            dist: Distribution::new(GridId(0), vec![DimFormat::Collapsed, DimFormat::Block(None)]),
        };
        let e = Extents::new(&[8, 8]);
        let nb = before.normalize(&e, &t, &g).unwrap();
        let na = after.normalize(&e, &t, &g).unwrap();
        assert_eq!(nb, na, "composed mappings must be recognized equal");
        assert!(nb.equiv_pointwise(&na));
    }

    #[test]
    fn block_vs_cyclic_same_block_no_wrap_are_equal() {
        // BLOCK(2) over 4 procs, extent 8 == CYCLIC(2): never wraps.
        let (t, g) = setup(&[8], &[4]);
        let e = Extents::new(&[8]);
        let b = Mapping {
            align: Alignment::identity(TemplateId(0), 1),
            dist: Distribution::new(GridId(0), vec![DimFormat::Block(Some(2))]),
        }
        .normalize(&e, &t, &g)
        .unwrap();
        let c = Mapping {
            align: Alignment::identity(TemplateId(0), 1),
            dist: Distribution::new(GridId(0), vec![DimFormat::Cyclic(Some(2))]),
        }
        .normalize(&e, &t, &g)
        .unwrap();
        assert_eq!(b, c);
    }

    #[test]
    fn block_vs_cyclic_differ_when_wrapping() {
        let (t, g) = setup(&[16], &[4]);
        let e = Extents::new(&[16]);
        let b = Mapping {
            align: Alignment::identity(TemplateId(0), 1),
            dist: Distribution::new(GridId(0), vec![DimFormat::Block(None)]), // BLOCK(4)
        }
        .normalize(&e, &t, &g)
        .unwrap();
        let c = Mapping {
            align: Alignment::identity(TemplateId(0), 1),
            dist: Distribution::new(GridId(0), vec![DimFormat::Cyclic(None)]), // CYCLIC(1)
        }
        .normalize(&e, &t, &g)
        .unwrap();
        assert_ne!(b, c);
        assert!(!b.equiv_pointwise(&c));
    }

    #[test]
    fn degenerate_layouts_canonicalize() {
        // Extent 5, BLOCK(8) vs BLOCK(16) over 1 cycle: all on proc 0.
        let (t, g) = setup(&[5], &[4]);
        let e = Extents::new(&[5]);
        let mk = |b| {
            Mapping {
                align: Alignment::identity(TemplateId(0), 1),
                dist: Distribution::new(GridId(0), vec![DimFormat::Block(Some(b))]),
            }
            .normalize(&e, &t, &g)
            .unwrap()
        };
        assert_eq!(mk(8), mk(16));
        assert_eq!(mk(8).owners(&[4]), vec![0]);
    }

    #[test]
    fn replicated_alignment_owns_on_all_coords() {
        let (t, g) = setup(&[8], &[4]);
        let m = Mapping {
            align: Alignment {
                template: TemplateId(0),
                targets: vec![AlignTarget::Replicate],
            },
            dist: Distribution::new(GridId(0), vec![DimFormat::Block(None)]),
        };
        let n = m.normalize(&Extents::new(&[3]), &t, &g).unwrap();
        assert_eq!(n.owners(&[1]).len(), 4);
        assert_eq!(n.local_volume(2), 3);
    }

    #[test]
    fn constant_alignment_pins_to_one_coord() {
        let (t, g) = setup(&[8], &[4]);
        let m = Mapping {
            align: Alignment {
                template: TemplateId(0),
                targets: vec![AlignTarget::Constant(5)], // cell 5, BLOCK(2) -> proc 2
            },
            dist: Distribution::new(GridId(0), vec![DimFormat::Block(None)]),
        };
        let n = m.normalize(&Extents::new(&[3]), &t, &g).unwrap();
        assert_eq!(n.owners(&[0]), vec![2]);
        assert_eq!(n.local_volume(2), 3);
        assert_eq!(n.local_volume(0), 0);
    }

    #[test]
    fn block_too_small_rejected() {
        let (t, g) = setup(&[100], &[4]);
        let m = Mapping {
            align: Alignment::identity(TemplateId(0), 1),
            dist: Distribution::new(GridId(0), vec![DimFormat::Block(Some(10))]),
        };
        let err = m.normalize(&Extents::new(&[100]), &t, &g).unwrap_err();
        assert!(matches!(err, MappingError::BlockTooSmall { .. }));
    }

    #[test]
    fn alignment_image_bounds_checked() {
        let (t, g) = setup(&[8], &[4]);
        let m = Mapping {
            align: Alignment {
                template: TemplateId(0),
                targets: vec![AlignTarget::Axis { array_dim: 0, stride: 1, offset: 4 }],
            },
            dist: Distribution::new(GridId(0), vec![DimFormat::Block(None)]),
        };
        // array extent 8, offset 4 -> image [4, 11] overflows template [0,8)
        assert!(m.normalize(&Extents::new(&[8]), &t, &g).is_err());
        // extent 4 fits
        assert!(m.normalize(&Extents::new(&[4]), &t, &g).is_ok());
    }

    #[test]
    fn local_volumes_sum_to_total_without_replication() {
        let (t, g) = setup(&[10, 12], &[2, 3]);
        let m = Mapping {
            align: Alignment::identity(TemplateId(0), 2),
            dist: Distribution::new(
                GridId(0),
                vec![DimFormat::Cyclic(Some(3)), DimFormat::Block(None)],
            ),
        };
        let e = Extents::new(&[10, 12]);
        let n = m.normalize(&e, &t, &g).unwrap();
        let total: u64 = (0..6).map(|r| n.local_volume(r)).sum();
        assert_eq!(total, e.volume());
    }

    #[test]
    fn grid_rank_mismatch_rejected() {
        let (t, g) = setup(&[8, 8], &[4]);
        let m = Mapping {
            align: Alignment::identity(TemplateId(0), 2),
            dist: Distribution::new(
                GridId(0),
                vec![DimFormat::Block(None), DimFormat::Block(None)],
            ),
        };
        assert!(matches!(
            m.normalize(&Extents::new(&[8, 8]), &t, &g),
            Err(MappingError::GridRankMismatch { .. })
        ));
    }

    #[test]
    fn under_distributed_grid_axes_replicate() {
        // Only one distributed dim onto a 2-D grid: the second grid axis
        // replicates, so each element has 2 owners (one per coordinate).
        let (t, g) = setup(&[8, 8], &[2, 2]);
        let m = Mapping {
            align: Alignment::identity(TemplateId(0), 2),
            dist: Distribution::new(
                GridId(0),
                vec![DimFormat::Block(None), DimFormat::Collapsed],
            ),
        };
        let n = m.normalize(&Extents::new(&[8, 8]), &t, &g).unwrap();
        assert_eq!(n.owners(&[0, 0]).len(), 2);
        assert!(matches!(n.axes[1].source, DimSource::Replicated));
    }

    #[test]
    fn all_collapsed_is_fully_replicated() {
        let (t, g) = setup(&[8], &[4]);
        let m = Mapping {
            align: Alignment::identity(TemplateId(0), 1),
            dist: Distribution::new(GridId(0), vec![DimFormat::Collapsed]),
        };
        let n = m.normalize(&Extents::new(&[8]), &t, &g).unwrap();
        assert_eq!(n.owners(&[3]).len(), 4);
        assert_eq!(
            n,
            NormalizedMapping::replicated(GridId(0), g.shape.clone(), Extents::new(&[8]))
        );
    }
}
