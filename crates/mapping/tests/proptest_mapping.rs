//! Property-based tests for the mapping algebra: the invariants every
//! downstream phase (remapping graph, redistribution engine, simulator)
//! silently relies on.

use hpfc_mapping::{
    AlignTarget, Alignment, DimFormat, DimLayout, Distribution, Extents, GridId, Mapping,
    ProcGrid, Template, TemplateId,
};
use proptest::prelude::*;

fn layout_strategy() -> impl Strategy<Value = DimLayout> {
    (1u64..200, 1u64..16, 1u64..9).prop_map(|(extent, block, nprocs)| {
        DimLayout::new(extent, block, nprocs)
    })
}

proptest! {
    /// Every cell has exactly one owner, and local/global addressing is
    /// a bijection on owned cells.
    #[test]
    fn layout_local_global_bijection(l in layout_strategy()) {
        for t in 0..l.extent {
            let p = l.owner(t);
            prop_assert!(p < l.nprocs);
            prop_assert_eq!(l.global(p, l.local(t)), t);
        }
    }

    /// Per-processor counts partition the extent.
    #[test]
    fn layout_counts_partition_extent(l in layout_strategy()) {
        let total: u64 = (0..l.nprocs).map(|p| l.local_count(p)).sum();
        prop_assert_eq!(total, l.extent);
    }

    /// `owned_cells` agrees with the owner predicate and with
    /// `local_count`, and is sorted.
    #[test]
    fn layout_owned_cells_consistent(l in layout_strategy()) {
        for p in 0..l.nprocs {
            let cells: Vec<u64> = l.owned_cells(p).collect();
            prop_assert!(cells.windows(2).all(|w| w[0] < w[1]));
            prop_assert_eq!(cells.len() as u64, l.local_count(p));
            for (i, &t) in cells.iter().enumerate() {
                prop_assert_eq!(l.owner(t), p);
                prop_assert_eq!(l.local(t), i as u64, "dense local packing");
            }
        }
    }

    /// Closed-form intervals expand to exactly the owned cells.
    #[test]
    fn layout_intervals_equal_cells(l in layout_strategy()) {
        for p in 0..l.nprocs {
            let cells: Vec<u64> = l.owned_cells(p).collect();
            let exp: Vec<u64> = l.owned_intervals(p).iter().flat_map(|&(a, b)| a..b).collect();
            prop_assert_eq!(cells, exp);
        }
    }
}

/// A random well-formed 2-D mapping of an `n0 x n1` array onto a 1-D
/// grid of `p` processors.
fn mapping_strategy() -> impl Strategy<Value = (Extents, Template, ProcGrid, Mapping)> {
    (2u64..24, 2u64..24, 1u64..6, 0usize..4, prop::bool::ANY, 1u64..5).prop_map(
        |(n0, n1, p, fmt_sel, transpose, b)| {
            let extents = Extents::new(&[n0, n1]);
            let tshape = if transpose { [n1, n0] } else { [n0, n1] };
            let template =
                Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&tshape) };
            let grid = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[p]) };
            let align = if transpose {
                Alignment::transpose2(TemplateId(0))
            } else {
                Alignment::identity(TemplateId(0), 2)
            };
            // Pick which template dim is distributed and with what format.
            let fmt = match fmt_sel {
                0 => DimFormat::Block(None),
                1 => DimFormat::Cyclic(None),
                2 => DimFormat::Cyclic(Some(b)),
                _ => DimFormat::Block(Some(tshape[0].div_ceil(p) + b)),
            };
            let dist = Distribution::new(GridId(0), vec![fmt, DimFormat::Collapsed]);
            (extents, template, grid, Mapping { align, dist })
        },
    )
}

proptest! {
    /// Without replication, the local volumes of all processors
    /// partition the array.
    #[test]
    fn mapping_local_volumes_partition((extents, template, grid, m) in mapping_strategy()) {
        let n = m.normalize(&extents, &template, &grid).unwrap();
        let total: u64 = (0..grid.nprocs()).map(|r| n.local_volume(r)).sum();
        prop_assert_eq!(total, extents.volume());
    }

    /// Every element has exactly one owner, and `is_owned` agrees with
    /// `owners`.
    #[test]
    fn mapping_single_owner((extents, template, grid, m) in mapping_strategy()) {
        let n = m.normalize(&extents, &template, &grid).unwrap();
        for pt in extents.points() {
            let owners = n.owners(&pt);
            prop_assert_eq!(owners.len(), 1);
            for r in 0..grid.nprocs() {
                prop_assert_eq!(n.is_owned(&pt, r), owners[0] == r);
            }
        }
    }

    /// Soundness of structural equality: two independently normalized
    /// mappings that compare equal place every element identically.
    #[test]
    fn structural_equality_implies_pointwise(
        (extents, template, grid, m1) in mapping_strategy(),
        sel in 0usize..4,
    ) {
        // Build a second mapping over the same array/grid.
        let fmt = match sel {
            0 => DimFormat::Block(None),
            1 => DimFormat::Cyclic(None),
            2 => DimFormat::Cyclic(Some(2)),
            _ => DimFormat::Block(Some(template.shape.extent(0).div_ceil(grid.nprocs()))),
        };
        let m2 = Mapping {
            align: m1.align.clone(),
            dist: Distribution::new(GridId(0), vec![fmt, DimFormat::Collapsed]),
        };
        let n1 = m1.normalize(&extents, &template, &grid).unwrap();
        if let Ok(n2) = m2.normalize(&extents, &template, &grid) {
            if n1 == n2 {
                prop_assert!(n1.equiv_pointwise(&n2));
            }
        }
    }

    /// `owned_indices_along` is consistent with ownership: the cartesian
    /// product of per-dim owned indices is exactly the owned point set.
    #[test]
    fn owned_indices_product_is_owned_set((extents, template, grid, m) in mapping_strategy()) {
        let n = m.normalize(&extents, &template, &grid).unwrap();
        for r in 0..grid.nprocs() {
            let coords = grid.shape.delinearize(r);
            let d0 = n.owned_indices_along(0, &coords);
            let d1 = n.owned_indices_along(1, &coords);
            let holds = n.holds_anything(&coords);
            let mut count = 0u64;
            for pt in extents.points() {
                if n.is_owned(&pt, r) {
                    count += 1;
                    prop_assert!(holds);
                    prop_assert!(d0.contains(&pt[0]) && d1.contains(&pt[1]));
                }
            }
            if holds {
                prop_assert_eq!(count, (d0.len() * d1.len()) as u64);
            } else {
                prop_assert_eq!(count, 0);
            }
        }
    }
}

/// Paper Fig. 1: `REALIGN A WITH B(j,i)` then `REDISTRIBUTE B(CYCLIC,*)`
/// produces a placement reachable in one direct remapping — i.e. the two
/// intermediate placements are all distinct, which is what makes the
/// intermediate copy a real (optimizable) cost.
#[test]
fn fig1_intermediate_mapping_is_distinct() {
    let e = Extents::new(&[12, 12]);
    let t = Template { id: TemplateId(0), name: "B".into(), shape: e.clone() };
    let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[4]) };
    let m0 = Mapping {
        align: Alignment::identity(TemplateId(0), 2),
        dist: Distribution::new(GridId(0), vec![DimFormat::Block(None), DimFormat::Collapsed]),
    };
    // After REALIGN A(i,j) WITH B(j,i): alignment transposed, same dist.
    let m1 = Mapping { align: Alignment::transpose2(TemplateId(0)), dist: m0.dist.clone() };
    // After REDISTRIBUTE B(CYCLIC,*).
    let m2 = Mapping {
        align: Alignment::transpose2(TemplateId(0)),
        dist: Distribution::new(GridId(0), vec![DimFormat::Cyclic(None), DimFormat::Collapsed]),
    };
    let n0 = m0.normalize(&e, &t, &g).unwrap();
    let n1 = m1.normalize(&e, &t, &g).unwrap();
    let n2 = m2.normalize(&e, &t, &g).unwrap();
    assert_ne!(n0, n1);
    assert_ne!(n1, n2);
    assert_ne!(n0, n2);
}

/// Replication makes local volumes over-count the array (each replica
/// holds a full projection).
#[test]
fn replicated_axis_overcounts() {
    let e = Extents::new(&[6]);
    let t = Template { id: TemplateId(0), name: "T".into(), shape: Extents::new(&[6, 4]) };
    let g = ProcGrid { id: GridId(0), name: "P".into(), shape: Extents::new(&[2, 2]) };
    let m = Mapping {
        align: Alignment {
            template: TemplateId(0),
            targets: vec![AlignTarget::identity(0), AlignTarget::Replicate],
        },
        dist: Distribution::new(GridId(0), vec![DimFormat::Block(None), DimFormat::Block(None)]),
    };
    let n = m.normalize(&e, &t, &g).unwrap();
    let total: u64 = (0..4).map(|r| n.local_volume(r)).sum();
    assert_eq!(total, 12); // 6 elements x 2 replicas
    assert_eq!(n.owners(&[0]).len(), 2);
}
