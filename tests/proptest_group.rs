//! Remap-group fuzzing: generate programs in which one directive
//! remaps 2–4 arrays at the same vertex (the paper's Fig. 3 template
//! impact) over a rich mapping space — heterogeneous strides and
//! offsets into one template, plain identity alignment, 2-D grids,
//! replication — and check on every one:
//!
//! 1. the directive lowers to ONE `RemapGroupOp` covering every
//!    data-moving array, and executing it coalesces the members
//!    (`remap_groups_coalesced == 1`, `plans_computed == 0`);
//! 2. per-point value oracle per array, under `ExecMode::Serial` and
//!    `ExecMode::Parallel(4)`;
//! 3. exact wire accounting: coalesced traffic equals the **sum of the
//!    member plans' bytes** (coalescing shares latency, never drops or
//!    duplicates payload), engine-written bytes equal the members'
//!    `(local + remote) × elem_size`, and the wire message count is
//!    the merged schedule's coalesced count;
//! 4. contention-freedom of the merged rounds: each processor sends at
//!    most one and receives at most one coalesced wire message per
//!    round;
//! 5. the ungrouped baseline (one solo schedule per array) produces
//!    identical values and payload bytes with at least as many wire
//!    messages — grouping is a scheduling change, not a semantic one.

use std::collections::BTreeMap;

use hpfc::codegen::ir::{RemapGroupOp, SStmt};
use hpfc::runtime::ExecMode;
use hpfc::{compile, CompileOptions, ExecConfig, ExecResult};
use proptest::prelude::*;

/// One generated program: a layout family, 2–4 member arrays, and two
/// distinct distribution formats (initial, redistributed).
#[derive(Debug, Clone)]
struct Gen {
    layout: usize,
    n_arrays: usize,
    f0: usize,
    f1: usize,
}

/// Format menus per layout family. All block sizes satisfy
/// `b × P ≥ extent` for their template, so every combination is valid.
fn formats(layout: usize) -> &'static [&'static str] {
    match layout {
        // t(40) onto p(4), arrays strided/offset-aligned into it.
        0 => &["block", "cyclic", "cyclic(2)", "cyclic(3)", "block(11)"],
        // t(16) onto p(4), identity alignment.
        1 => &["block", "cyclic", "cyclic(2)", "cyclic(3)", "block(5)"],
        // 2-D t(8,8) onto q(2,2): format pairs.
        2 => &["block, block", "cyclic, block", "block, cyclic", "cyclic, cyclic(2)", "cyclic(3), block"],
        // t(16,4) onto q(2,2): arrays replicated along the second axis.
        3 => &["block, block", "cyclic, block", "cyclic(2), block", "block(9), cyclic", "cyclic(3), cyclic"],
        _ => unreachable!(),
    }
}

/// Per-array alignment clause for the heterogeneous-stride family.
fn align_clause(layout: usize, k: usize, name: &str) -> String {
    match layout {
        0 => {
            // Distinct affine images into t(40) per member.
            let spec = ["t(2*i)", "t(i + 3)", "t(2*i + 1)", "t(i + 17)"][k];
            format!("!hpf$ align {name}(i) with {spec}\n")
        }
        3 => format!("!hpf$ align {name}(i) with t(i, *)\n"),
        _ => unreachable!("identity-aligned layouts use a collective clause"),
    }
}

fn render(g: &Gen) -> String {
    let f = formats(g.layout);
    let (f0, f1) = (f[g.f0], f[g.f1]);
    let names: Vec<String> = (0..g.n_arrays).map(|k| format!("a{k}")).collect();
    let mut s = String::from("subroutine pgrp\n");
    let decl = match g.layout {
        2 => names.iter().map(|n| format!("{n}(8, 8)")).collect::<Vec<_>>().join(", "),
        _ => names.iter().map(|n| format!("{n}(16)")).collect::<Vec<_>>().join(", "),
    };
    s.push_str(&format!("  real :: {decl}\n"));
    match g.layout {
        0 => {
            s.push_str("!hpf$ processors p(4)\n!hpf$ template t(40)\n!hpf$ dynamic t\n");
            for (k, n) in names.iter().enumerate() {
                s.push_str(&align_clause(0, k, n));
            }
            s.push_str(&format!("!hpf$ distribute t({f0}) onto p\n"));
        }
        1 => {
            s.push_str("!hpf$ processors p(4)\n!hpf$ template t(16)\n!hpf$ dynamic t\n");
            s.push_str(&format!("!hpf$ align with t :: {}\n", names.join(", ")));
            s.push_str(&format!("!hpf$ distribute t({f0}) onto p\n"));
        }
        2 => {
            s.push_str("!hpf$ processors q(2, 2)\n!hpf$ template t(8, 8)\n!hpf$ dynamic t\n");
            s.push_str(&format!("!hpf$ align with t :: {}\n", names.join(", ")));
            s.push_str(&format!("!hpf$ distribute t({f0}) onto q\n"));
        }
        3 => {
            s.push_str("!hpf$ processors q(2, 2)\n!hpf$ template t(16, 4)\n!hpf$ dynamic t\n");
            for n in &names {
                s.push_str(&align_clause(3, 0, n));
            }
            s.push_str(&format!("!hpf$ distribute t({f0}) onto q\n"));
        }
        _ => unreachable!(),
    }
    // Position-dependent init per array, so misrouted or permuted
    // elements cannot pass the oracle.
    for (k, n) in names.iter().enumerate() {
        if g.layout == 2 {
            s.push_str(&format!(
                "  do i = 1, 8\n    do j = 1, 8\n      {n}(i, j) = i * 10.0 + j + {}\n    enddo\n  enddo\n",
                100 * (k + 1)
            ));
        } else {
            s.push_str(&format!(
                "  do i = 1, 16\n    {n}(i) = i + {}\n  enddo\n",
                100 * (k + 1)
            ));
        }
    }
    s.push_str(&format!("!hpf$ redistribute t({f1})\n"));
    // Read every array after the directive so nothing is removable.
    let reads: Vec<String> = names
        .iter()
        .map(|n| if g.layout == 2 { format!("{n}(1, 2)") } else { format!("{n}(2)") })
        .collect();
    s.push_str(&format!("  x = {}\n", reads.join(" + ")));
    s.push_str("end subroutine\n");
    s
}

/// Expected dense contents per array, matching the init loops.
fn oracle(g: &Gen, k: usize) -> Vec<f64> {
    if g.layout == 2 {
        (0..8u64)
            .flat_map(|i| {
                (0..8u64).map(move |j| (i + 1) as f64 * 10.0 + (j + 1) as f64 + (100 * (k + 1)) as f64)
            })
            .collect()
    } else {
        (0..16u64).map(|i| (i + 1) as f64 + (100 * (k + 1)) as f64).collect()
    }
}

fn find_group(body: &[SStmt]) -> Option<&RemapGroupOp> {
    body.iter().find_map(|s| match s {
        SStmt::RemapGroup(op) => Some(op),
        _ => None,
    })
}

fn run(compiled: &hpfc::Compiled, mode: ExecMode) -> ExecResult {
    let programs = compiled.programs();
    let nprocs = programs.values().map(|p| p.nprocs).max().unwrap();
    let mut ex = hpfc::Executor {
        programs: &programs,
        machine: hpfc::Machine::new(nprocs).with_exec_mode(mode),
        config: ExecConfig::default(),
    };
    ex.run("pgrp").expect("pgrp executes cleanly")
}

fn gen_strategy() -> impl Strategy<Value = Gen> {
    (0usize..4, 2usize..5, 0usize..5, 0usize..4).prop_map(|(layout, n_arrays, f0, d)| {
        // Two distinct formats: the directive must actually change the
        // mapping so every member moves data.
        let f1 = (f0 + 1 + d) % 5;
        Gen { layout, n_arrays, f0, f1 }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn grouped_directives_coalesce_exactly(g in gen_strategy()) {
        let src = render(&g);
        let naive = compile(&src, &CompileOptions::naive())
            .unwrap_or_else(|e| panic!("{e:?}\n{src}"));
        let p = &naive.units["pgrp"].program;

        // --- static shape: one group, all arrays members, one planned
        // source each.
        let op = find_group(&p.body).unwrap_or_else(|| panic!("no remap group\n{src}"));
        prop_assert_eq!(op.members.len(), g.n_arrays, "all arrays grouped\n{}", src);
        for m in &op.members {
            prop_assert_eq!(m.copies.len(), 1, "single reaching source\n{}", src);
        }
        let sched = &op.planned.schedule;
        // Merged rounds never exceed the solo sum; payload is the sum.
        prop_assert!(sched.n_rounds() <= op.planned.solo_rounds());
        let member_bytes: u64 =
            op.members.iter().map(|m| m.copies[0].planned.plan.total_bytes()).sum();
        let member_msgs: u64 =
            op.members.iter().map(|m| m.copies[0].planned.plan.total_messages()).sum();
        prop_assert_eq!(sched.total_bytes(), member_bytes, "{}", src);
        let moved_bytes: u64 = op
            .members
            .iter()
            .map(|m| {
                let plan = &m.copies[0].planned.plan;
                (plan.local_elements + plan.remote_elements()) * plan.elem_size
            })
            .sum();

        // --- contention-freedom of the merged rounds: per round every
        // processor sends at most one and receives at most one
        // coalesced wire message.
        for r in 0..sched.n_rounds() {
            let mut sends: BTreeMap<u64, u64> = BTreeMap::new();
            let mut recvs: BTreeMap<u64, u64> = BTreeMap::new();
            for (from, to, bytes) in sched.round_triples(r) {
                prop_assert!(bytes > 0);
                *sends.entry(from).or_insert(0) += 1;
                *recvs.entry(to).or_insert(0) += 1;
            }
            prop_assert!(sends.values().all(|&c| c <= 1), "round {} sender contention\n{}", r, src);
            prop_assert!(recvs.values().all(|&c| c <= 1), "round {} receiver contention\n{}", r, src);
        }

        // --- execute under both copy engines.
        for mode in [ExecMode::Serial, ExecMode::Parallel(4)] {
            let res = run(&naive, mode);
            for k in 0..g.n_arrays {
                let want = oracle(&g, k);
                prop_assert_eq!(
                    &res.arrays[&format!("a{k}")], &want,
                    "{:?} values of a{}\n{}", mode, k, src
                );
            }
            prop_assert_eq!(res.stats.plans_computed, 0, "{:?} planned\n{}", mode, src);
            prop_assert_eq!(res.stats.remap_groups_coalesced, 1, "{:?}\n{}", mode, src);
            prop_assert_eq!(res.stats.remaps_performed, g.n_arrays as u64, "{:?}\n{}", mode, src);
            // Exact traffic: coalesced wire bytes == sum of member
            // plans; engine wrote every member's (local + remote).
            prop_assert_eq!(res.stats.bytes, member_bytes, "{:?} wire bytes\n{}", mode, src);
            prop_assert_eq!(res.stats.messages, sched.n_wire_messages(), "{:?}\n{}", mode, src);
            prop_assert_eq!(res.stats.bytes_moved, moved_bytes, "{:?} moved\n{}", mode, src);
        }

        // --- the ungrouped baseline: same values, same payload, one
        // solo schedule per array (>= as many wire messages).
        let solo = compile(&src, &CompileOptions::naive().ungrouped())
            .unwrap_or_else(|e| panic!("{e:?}\n{src}"));
        prop_assert!(find_group(&solo.units["pgrp"].program.body).is_none());
        let solo_res = run(&solo, ExecMode::Serial);
        for k in 0..g.n_arrays {
            prop_assert_eq!(
                &solo_res.arrays[&format!("a{k}")], &oracle(&g, k),
                "ungrouped values of a{}\n{}", k, src
            );
        }
        prop_assert_eq!(solo_res.stats.bytes, member_bytes, "{}", src);
        prop_assert_eq!(solo_res.stats.messages, member_msgs, "{}", src);
        prop_assert!(solo_res.stats.messages >= run(&naive, ExecMode::Serial).stats.messages);
        prop_assert_eq!(solo_res.stats.plans_computed, 0, "{}", src);

        // --- optimized compilation agrees on values.
        let opt = compile(&src, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{e:?}\n{src}"));
        let opt_res = run(&opt, ExecMode::Serial);
        for k in 0..g.n_arrays {
            prop_assert_eq!(
                &opt_res.arrays[&format!("a{k}")], &oracle(&g, k),
                "optimized values of a{}\n{}", k, src
            );
        }
        prop_assert!(opt_res.stats.bytes <= solo_res.stats.bytes, "opt traffic grew\n{}", src);
    }
}
