//! Pipeline fuzzing: generate random well-formed routines (random
//! control flow, random remapping directives, random references) and
//! check the end-to-end invariants on every one:
//!
//! 1. naive and optimized compilations produce **identical results**;
//! 2. optimization never increases remapping traffic;
//! 3. Theorem 1 (App. C) holds on the optimized graph;
//! 4. every emitted remap slot count is consistent with the stats.

use hpfc::{compile, compile_and_run, CompileOptions, ExecConfig};
use proptest::prelude::*;

/// A random program over three arrays aligned to one template, with
/// nested ifs/loops and redistributions drawn from four formats.
#[derive(Debug, Clone)]
struct Gen {
    stmts: Vec<GStmt>,
}

#[derive(Debug, Clone)]
enum GStmt {
    AssignWhole(usize),          // aK = aK + 1.0  (read+write)
    AssignFull(usize),           // aK = 2.0       (full redefine)
    Read(usize),                 // x = aK(1)
    Redistribute(usize),         // one of 4 formats
    If(Vec<GStmt>, Vec<GStmt>),
    Loop(u8, Vec<GStmt>),
}

fn fmt_str(i: usize) -> &'static str {
    ["block", "cyclic", "cyclic(2)", "block(8)"][i % 4]
}

fn render_body(stmts: &[GStmt], out: &mut String, depth: usize) {
    let pad = "  ".repeat(depth + 1);
    for s in stmts {
        match s {
            GStmt::AssignWhole(k) => out.push_str(&format!("{pad}a{k} = a{k} + 1.0\n", k = k % 3)),
            GStmt::AssignFull(k) => out.push_str(&format!("{pad}a{k} = 2.0\n", k = k % 3)),
            GStmt::Read(k) => out.push_str(&format!("{pad}x = a{k}(3)\n", k = k % 3)),
            GStmt::Redistribute(f) => {
                out.push_str(&format!("!hpf$ redistribute t({})\n", fmt_str(*f)))
            }
            GStmt::If(a, b) => {
                out.push_str(&format!("{pad}if (x > 0.0) then\n"));
                render_body(a, out, depth + 1);
                if !b.is_empty() {
                    out.push_str(&format!("{pad}else\n"));
                    render_body(b, out, depth + 1);
                }
                out.push_str(&format!("{pad}endif\n"));
            }
            GStmt::Loop(n, b) => {
                out.push_str(&format!("{pad}do i = 1, {n}\n"));
                render_body(b, out, depth + 1);
                out.push_str(&format!("{pad}enddo\n"));
            }
        }
    }
}

fn render(g: &Gen) -> String {
    let mut s = String::from(
        "subroutine fuzz\n  real :: a0(16), a1(16), a2(16)\n!hpf$ processors p(4)\n\
         !hpf$ template t(16)\n!hpf$ dynamic t\n!hpf$ align with t :: a0, a1, a2\n\
         !hpf$ distribute t(block) onto p\n  x = 1.0\n  a0 = 0.0\n  a1 = 0.0\n  a2 = 0.0\n",
    );
    render_body(&g.stmts, &mut s, 0);
    s.push_str("end subroutine\n");
    s
}

fn gstmt_strategy(depth: u32) -> impl Strategy<Value = GStmt> {
    let leaf = prop_oneof![
        (0usize..3).prop_map(GStmt::AssignWhole),
        (0usize..3).prop_map(GStmt::AssignFull),
        (0usize..3).prop_map(GStmt::Read),
        (0usize..4).prop_map(GStmt::Redistribute),
    ];
    leaf.prop_recursive(depth, 24, 4, |inner| {
        prop_oneof![
            (prop::collection::vec(inner.clone(), 1..4), prop::collection::vec(inner.clone(), 0..3))
                .prop_map(|(a, b)| GStmt::If(a, b)),
            (1u8..4, prop::collection::vec(inner, 1..4)).prop_map(|(n, b)| GStmt::Loop(n, b)),
        ]
    })
}

fn program_strategy() -> impl Strategy<Value = Gen> {
    prop::collection::vec(gstmt_strategy(2), 1..10).prop_map(|stmts| Gen { stmts })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_optimize_safely(g in program_strategy()) {
        let src = render(&g);
        // Random branch-local redistributions can create ambiguous
        // references — those programs are *correctly rejected*
        // (restriction 1). Rejection must not depend on the
        // optimization level; accepted programs continue below.
        let naive = compile(&src, &CompileOptions::naive());
        let opt = compile(&src, &CompileOptions::default());
        let (naive, opt) = match (naive, opt) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(a), Err(b)) => {
                let ca: Vec<_> = a.iter().map(|d| d.code).collect();
                let cb: Vec<_> = b.iter().map(|d| d.code).collect();
                prop_assert_eq!(ca, cb, "rejection differs by opt level\n{}", src);
                return Ok(());
            }
            (Ok(_), Err(e)) | (Err(e), Ok(_)) => {
                panic!("acceptance depends on optimization level: {e:?}\n{src}")
            }
        };
        hpfc::rgraph::optimize::verify_reaching_paths(&opt.main().rg)
            .unwrap_or_else(|e| panic!("{e}\n{src}"));

        let rn = hpfc::execute(&naive.programs(), "fuzz", ExecConfig::default())
            .expect("naive executes cleanly");
        let ro = hpfc::execute(&opt.programs(), "fuzz", ExecConfig::default())
            .expect("optimized executes cleanly");
        prop_assert_eq!(&rn.arrays, &ro.arrays, "results differ\n{}", src);
        prop_assert!(
            ro.stats.bytes <= rn.stats.bytes,
            "optimized traffic grew: {} > {} \n{}",
            ro.stats.bytes, rn.stats.bytes, src
        );
        prop_assert!(ro.stats.messages <= rn.stats.messages);
    }

    #[test]
    fn loop_motion_is_semantics_preserving(g in program_strategy()) {
        let src = render(&g);
        let plain = compile_and_run(&src, &CompileOptions::default(), ExecConfig::default());
        let moved = compile_and_run(&src, &CompileOptions::max(), ExecConfig::default());
        let ((_, plain), (_, moved)) = match (plain, moved) {
            (Ok(a), Ok(b)) => (a, b),
            // Rejected programs (restriction 1) are out of scope here;
            // note that motion may turn a rejected program into an
            // accepted one (it removes an in-loop remapping ambiguity),
            // which is fine — it only runs when provably safe.
            (Err(_), _) | (_, Err(_)) => return Ok(()),
        };
        prop_assert_eq!(&plain.arrays, &moved.arrays, "loop motion changed results\n{}", src);
    }

    #[test]
    fn eviction_pressure_is_semantics_preserving(g in program_strategy()) {
        let src = render(&g);
        let normal = compile_and_run(&src, &CompileOptions::default(), ExecConfig::default());
        let cfg = ExecConfig { evict_live_copies: true, ..ExecConfig::default() };
        let pressed = compile_and_run(&src, &CompileOptions::default(), cfg);
        let ((_, normal), (_, pressed)) = match (normal, pressed) {
            (Ok(a), Ok(b)) => (a, b),
            (Err(_), _) | (_, Err(_)) => return Ok(()), // rejected program
        };
        prop_assert_eq!(&normal.arrays, &pressed.arrays);
        prop_assert!(pressed.stats.bytes >= normal.stats.bytes);
    }
}
