//! Cross-crate integration tests: compile every figure program with and
//! without the paper's optimizations, execute both on the simulated
//! machine, and check (a) bit-identical results — the optimizations are
//! semantics-preserving — and (b) the communication savings the paper
//! claims.

use hpfc::{compile, compile_and_run, figures, CompileOptions, ExecConfig};

fn run_both(src: &str, exec: ExecConfig) -> (hpfc::ExecResult, hpfc::ExecResult) {
    let (_, naive) = compile_and_run(src, &CompileOptions::naive(), exec.clone()).unwrap();
    let (_, opt) = compile_and_run(src, &CompileOptions::default(), exec).unwrap();
    (naive, opt)
}

fn scalars(pairs: &[(&str, f64)]) -> ExecConfig {
    let mut cfg = ExecConfig::default();
    for (k, v) in pairs {
        cfg = cfg.with_scalar(k, *v);
    }
    cfg
}

#[test]
fn optimizations_preserve_results_on_all_figures() {
    for (name, src) in figures::all() {
        let exec = scalars(&[("m", 1.0), ("t", 3.0)]);
        let (naive, opt) = run_both(src, exec);
        assert_eq!(naive.arrays, opt.arrays, "{name}: array results differ");
        assert_eq!(naive.scalars, opt.scalars, "{name}: scalar results differ");
    }
}

#[test]
fn optimizations_never_increase_traffic() {
    for (name, src) in figures::all() {
        let exec = scalars(&[("m", 1.0), ("t", 3.0)]);
        let (naive, opt) = run_both(src, exec);
        assert!(
            opt.stats.bytes <= naive.stats.bytes,
            "{name}: optimized traffic {} > naive {}",
            opt.stats.bytes,
            naive.stats.bytes
        );
        assert!(opt.stats.messages <= naive.stats.messages, "{name}: messages");
    }
}

#[test]
fn fig1_direct_remapping_halves_traffic() {
    // Naive: A copies block→col-block→cyclic (two data movements).
    // Optimized: one direct block→cyclic movement.
    let (naive, opt) = run_both(figures::FIG1_DIRECT, ExecConfig::default());
    assert_eq!(naive.stats.remaps_performed, 2);
    assert_eq!(opt.stats.remaps_performed, 1);
    assert!(opt.stats.bytes < naive.stats.bytes);
}

#[test]
fn fig2_useless_remappings_cost_nothing_after_optimization() {
    let (naive, opt) = run_both(figures::FIG2_USELESS, ExecConfig::default());
    // Optimized: the one kept C-remapping is trivial (status check);
    // B's remapping is removed outright: zero remapping traffic.
    assert_eq!(opt.stats.bytes, 0, "stats: {:?}", opt.stats);
    assert!(naive.stats.bytes > 0);
}

#[test]
fn fig3_only_used_arrays_move() {
    let (naive, opt) = run_both(figures::FIG3_ALIGNED, ExecConfig::default());
    // Five aligned arrays remapped naively; only A and D after opts.
    assert_eq!(naive.stats.remaps_performed, 5);
    assert_eq!(opt.stats.remaps_performed, 2);
    // Traffic drops by the three unused arrays' redistribution volume.
    assert!(opt.stats.bytes * 2 < naive.stats.bytes);
}

#[test]
fn fig4_argument_remappings_shrink_from_six_to_three() {
    let (naive, opt) = run_both(figures::FIG4_ARGS, ExecConfig::default());
    // Naive: 6 remap movements (in/out per call); foo#2's ArgIn is a
    // genuine no-op even naively (status check catches block→... wait:
    // naively the restore after foo#1 puts Y back to BLOCK, so foo#2's
    // ArgIn moves data again: 6 real movements.
    assert_eq!(naive.stats.remaps_performed, 6);
    // Optimized: foo#1 in (block→cyclic), bla in (cyclic→cyclic(2)),
    // final restore (cyclic(2)→block): 3 movements; foo#2's ArgIn is
    // skipped by the status check.
    assert_eq!(opt.stats.remaps_performed, 3);
    assert_eq!(opt.stats.remaps_skipped_noop, 1);
    assert!(opt.stats.bytes < naive.stats.bytes);
}

#[test]
fn fig6_status_resolves_ambiguous_state_both_paths() {
    // The top-level run takes the THEN path (positive initial fill).
    let (compiled, res) = compile_and_run(
        figures::FIG6_OK,
        &CompileOptions::default(),
        ExecConfig::default(),
    )
    .unwrap();
    assert!(res.stats.remaps_performed > 0);
    // The final remap must have both reaching versions in its guarded
    // copy code (Fig. 20) — each arm is a message-level schedule, not a
    // whole-array copy statement.
    let text = hpfc::codegen::render::program_text(&compiled.main().program);
    assert!(text.contains("if (status_a == 0) then  ! a_0 -> a_2"), "{text}");
    assert!(text.contains("if (status_a == 1) then  ! a_1 -> a_2"), "{text}");
    assert!(!text.contains("a_2 = a_0"), "whole-array copies are gone: {text}");
}

/// Fig. 13 variant with the branch driven by a scalar dummy so both
/// paths can be exercised deterministically (`a` itself is initialized
/// so the entry copy exists and *can* be kept live).
const FIG13_DRIVEN: &str = "\
subroutine fig13x(s)
  real :: a(16)
!hpf$ processors p(4)
!hpf$ dynamic a
!hpf$ distribute a(block) onto p
  a = 1.0
  if (s > 0.0) then
!hpf$ redistribute a(cyclic)
    a = 2.0
  else
!hpf$ redistribute a(cyclic)
    x = a(3)
  endif
!hpf$ redistribute a(block)
  x = a(5)
end subroutine
";

#[test]
fn fig13_live_copy_saves_restore_on_read_only_path() {
    // THEN path writes through the cyclic copy: A_0 is stale, no reuse.
    let (_, then_path) = compile_and_run(
        FIG13_DRIVEN,
        &CompileOptions::default(),
        scalars(&[("s", 1.0)]),
    )
    .unwrap();
    assert_eq!(then_path.stats.remaps_reused_live, 0, "{:?}", then_path.stats);

    // ELSE path only reads: the original block copy is still live when
    // the final redistribution wants it back — zero traffic for it.
    let (_, else_path) = compile_and_run(
        FIG13_DRIVEN,
        &CompileOptions::default(),
        scalars(&[("s", -1.0)]),
    )
    .unwrap();
    assert_eq!(else_path.stats.remaps_reused_live, 1, "{:?}", else_path.stats);
    // Both paths produce correct values.
    assert!(then_path.arrays["a"].iter().all(|&v| v == 2.0));
    assert!(else_path.arrays["a"].iter().all(|&v| v == 1.0));
}

#[test]
fn fig15_status_save_restore_roundtrip() {
    // The Fig. 18 save/restore is the *baseline* mechanism: in naive
    // mode the flow-dependent restore is emitted and executed.
    let (compiled, res) = compile_and_run(
        figures::FIG15_CALL_STATUS,
        &CompileOptions::naive(),
        ExecConfig::default(),
    )
    .unwrap();
    assert_eq!(compiled.main().codegen_stats.save_restores, 1);
    // One compiled arm per statically possible saved tag ({0, 1}).
    assert_eq!(compiled.main().codegen_stats.restore_arms, 2);
    assert!(res.stats.remaps_performed > 0);
    // The restore executed through its compiled arm: dispatch on the
    // saved tag, cached copy program replay, zero run-time planning.
    assert_eq!(res.stats.restores_replayed, 1, "{:?}", res.stats);
    assert_eq!(res.stats.plans_computed, 0, "{:?}", res.stats);
    let text = hpfc::codegen::render::program_text(&compiled.main().program);
    assert!(text.contains("reaching_0 = status_a"), "{text}");
    // The restore is a switch on the saved tag whose arms are full
    // guarded message-level remaps — the opaque run-time `remap a ->`
    // statement is gone.
    assert!(text.contains("if (reaching_0 == 0) then  ! restore a -> a_0"), "{text}");
    assert!(text.contains("elif (reaching_0 == 1) then  ! restore a -> a_1"), "{text}");
    assert!(text.contains("! a_2 -> a_0: 12 message(s), 96 byte(s), 3 round(s)"), "{text}");
    assert!(text.contains("! a_2 -> a_1: 6 message(s), 96 byte(s), 3 round(s)"), "{text}");
    assert!(!text.contains("remap a -> a_"), "{text}");

    // With App. C on, the restore is dead (nothing references `a` while
    // restored) and is removed — sharper than the paper's Fig. 18 code.
    let opt = compile(figures::FIG15_CALL_STATUS, &CompileOptions::default()).unwrap();
    assert_eq!(opt.main().codegen_stats.save_restores, 0);
    assert!(opt.main().opt_stats.removed > 0);
}

#[test]
fn fig16_loop_motion_makes_iterations_free() {
    let t = 6.0;
    let exec = scalars(&[("t", t)]);
    let (_, naive) =
        compile_and_run(figures::FIG16_LOOP, &CompileOptions::naive(), exec.clone()).unwrap();
    let (_, motioned) =
        compile_and_run(figures::FIG16_LOOP, &CompileOptions::max(), exec).unwrap();
    // Naive: 2 movements per iteration.
    assert_eq!(naive.stats.remaps_performed, 2.0 as u64 * t as u64);
    // Motion + status check: one movement on the first iteration, one
    // after the loop; iterations 2..t skip via the status check.
    assert_eq!(motioned.stats.remaps_performed, 2);
    assert_eq!(motioned.stats.remaps_skipped_noop, t as u64 - 1);
    // Results agree.
    let (_, a) = compile_and_run(
        figures::FIG16_LOOP,
        &CompileOptions::naive(),
        scalars(&[("t", t)]),
    )
    .unwrap();
    let (_, b) = compile_and_run(
        figures::FIG16_LOOP,
        &CompileOptions::max(),
        scalars(&[("t", t)]),
    )
    .unwrap();
    assert_eq!(a.arrays["a"], b.arrays["a"]);
}

#[test]
fn fig16_zero_trip_loop_is_correct_under_motion() {
    let exec = scalars(&[("t", 0.0)]);
    let (_, naive) =
        compile_and_run(figures::FIG16_LOOP, &CompileOptions::naive(), exec.clone()).unwrap();
    let (_, motioned) = compile_and_run(figures::FIG16_LOOP, &CompileOptions::max(), exec).unwrap();
    assert_eq!(naive.arrays["a"], motioned.arrays["a"]);
    // The hoisted restore is a no-op when the loop never ran.
    assert_eq!(motioned.stats.remaps_performed, 0);
}

#[test]
fn kill_directive_suppresses_data_movement() {
    let with_kill = figures::KILL_EXAMPLE;
    let without_kill = figures::KILL_EXAMPLE.replace("!hpf$ kill b\n", "");
    let (_, w) =
        compile_and_run(with_kill, &CompileOptions::default(), ExecConfig::default()).unwrap();
    let (_, wo) =
        compile_and_run(&without_kill, &CompileOptions::default(), ExecConfig::default()).unwrap();
    // B's copy moves no data under KILL.
    assert_eq!(w.stats.remaps_dead_values, 1);
    assert!(w.stats.bytes < wo.stats.bytes, "{} !< {}", w.stats.bytes, wo.stats.bytes);
    // And the final values agree (B is redefined before its next read).
    assert_eq!(w.arrays["b"], wo.arrays["b"]);
    assert_eq!(w.arrays["a"], wo.arrays["a"]);
}

#[test]
fn adi_kernel_results_are_distribution_independent() {
    let exec = scalars(&[("t", 2.0)]);
    let (_, naive) = compile_and_run(figures::ADI_KERNEL, &CompileOptions::naive(), exec.clone())
        .unwrap();
    let (_, opt) =
        compile_and_run(figures::ADI_KERNEL, &CompileOptions::max(), exec).unwrap();
    assert_eq!(naive.arrays["u"], opt.arrays["u"]);
    assert!(opt.stats.bytes <= naive.stats.bytes);
}

#[test]
fn eviction_pressure_trades_memory_for_traffic() {
    // E24: with permanent eviction pressure, live-copy reuse never
    // fires; traffic can only grow, peak memory can only shrink.
    let normal = compile_and_run(FIG13_DRIVEN, &CompileOptions::default(), scalars(&[("s", -1.0)]))
        .unwrap()
        .1;
    let mut pressed_cfg = scalars(&[("s", -1.0)]);
    pressed_cfg.evict_live_copies = true;
    let pressed =
        compile_and_run(FIG13_DRIVEN, &CompileOptions::default(), pressed_cfg).unwrap().1;
    assert_eq!(normal.stats.remaps_reused_live, 1);
    assert_eq!(pressed.stats.remaps_reused_live, 0);
    assert!(pressed.stats.bytes > normal.stats.bytes);
    assert!(pressed.peak_mem_bytes <= normal.peak_mem_bytes);
    // Values identical either way: eviction only costs communication.
    assert_eq!(normal.arrays["a"], pressed.arrays["a"]);
}

#[test]
fn fig20_golden_copy_code() {
    // The generated guarded copy code for Fig. 6's final remapping has
    // exactly the shape of the paper's Fig. 20.
    let compiled = compile(figures::FIG6_OK, &CompileOptions::default()).unwrap();
    let p = &compiled.main().program;
    // Find the last Remap of the body.
    fn last_remap(body: &[hpfc::codegen::ir::SStmt]) -> Option<&hpfc::codegen::ir::RemapOp> {
        let mut found = None;
        for s in body {
            match s {
                hpfc::codegen::ir::SStmt::Remap(op) => found = Some(op),
                hpfc::codegen::ir::SStmt::If { then_body, else_body, .. } => {
                    found = last_remap(then_body).or(last_remap(else_body)).or(found)
                }
                _ => {}
            }
        }
        found
    }
    let op = last_remap(&p.body).expect("a remap in the body");
    let text = hpfc::codegen::render::remap_text(p, op);
    // The Fig. 20 guard skeleton survives; each copy arm is now a
    // message-level caterpillar schedule.
    let expected_head = "\
if (status_a /= 2) then
  allocate a_2 if needed
  if (.not. live_a(2)) then
    if (status_a == 0) then  ! a_0 -> a_2: 6 message(s), 96 byte(s), 3 round(s)
      copy local runs a_0 \u{2229} a_2 across ranks (4 element(s) total, no communication)
      round 1:
";
    assert!(
        text.starts_with(expected_head),
        "generated:\n{text}\nexpected prefix:\n{expected_head}"
    );
    // Both arms present, guard closes, and no whole-array copies remain.
    assert!(text.contains("if (status_a == 1) then  ! a_1 -> a_2"), "{text}");
    assert!(text.contains("send sbuf"), "{text}");
    assert!(text.contains("recv rbuf"), "{text}");
    assert!(!text.contains("a_2 = a_0") && !text.contains("a_2 = a_1"), "{text}");
}

#[test]
fn interprocedural_execution_with_defined_callee() {
    // A module where the callee is *defined*, not just described: the
    // callee runs its own static program (with its own remapping) on
    // the shared machine.
    let src = "\
subroutine caller
  real :: b(16)
!hpf$ processors p(4)
!hpf$ dynamic b
!hpf$ distribute b(block) onto p
  interface
    subroutine double(x)
      real :: x(16)
      intent(inout) :: x
!hpf$ distribute x(cyclic) onto p
    end subroutine
  end interface
  b = 3.0
  call double(b)
  b = b + 1.0
end subroutine

subroutine double(x)
  real :: x(16)
  intent(inout) :: x
!hpf$ processors p(4)
!hpf$ distribute x(cyclic) onto p
  x = x * 2.0
end subroutine
";
    let (compiled, res) =
        compile_and_run(src, &CompileOptions::default(), ExecConfig::default()).unwrap();
    assert_eq!(compiled.units.len(), 2);
    // 3.0 * 2 + 1 = 7.0 everywhere.
    assert!(res.arrays["b"].iter().all(|&v| v == 7.0), "{:?}", res.arrays["b"]);
    // The caller remapped B to CYCLIC for the call and restored after.
    assert!(res.stats.remaps_performed >= 2);
}

#[test]
fn executor_reuse_across_runs_accumulates_stats() {
    let compiled = compile(figures::FIG1_DIRECT, &CompileOptions::default()).unwrap();
    let programs = compiled.programs();
    let mut ex = hpfc::Executor {
        programs: &programs,
        machine: hpfc::Machine::new(4),
        config: ExecConfig::default(),
    };
    ex.run("fig1").expect("fig1 executes cleanly");
    let after_one = ex.machine.stats.bytes;
    ex.run("fig1").expect("fig1 executes cleanly");
    assert_eq!(ex.machine.stats.bytes, 2 * after_one);
}
