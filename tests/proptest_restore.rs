//! Restore-path fuzzing: generate programs with the Fig. 18
//! call/save/restore shape — a branch-dependent redistribution before a
//! call, so the mapping reaching the call (and therefore the post-call
//! restore target) is known only at run time — over a rich mapping
//! space (strides, offsets, replication, 2-D grids), and check on every
//! one, under both copy engines:
//!
//! 1. the restored array values equal the per-point oracle;
//! 2. `plans_computed == 0` after lowering — the flow-dependent restore
//!    executes entirely from its compile-time-planned arms, naive and
//!    optimized alike;
//! 3. the arm selected at run time matches the actually-live version:
//!    the run's exact wire traffic equals the schedules of the copies
//!    on the taken path, *including the restore arm of the saved tag*
//!    (a wrong arm books a different schedule), and the interpreter's
//!    own reaching-analysis assertions stay silent.

use hpfc::codegen::ir::{RemapOp, RestoreOp, SStmt, StaticProgram};
use hpfc::runtime::ExecMode;
use hpfc::{compile, CompileOptions, ExecConfig, ExecResult};
use proptest::prelude::*;

/// One generated program shape: a layout family and three distinct
/// distribution formats (initial, branch, callee dummy).
#[derive(Debug, Clone)]
struct Gen {
    layout: usize,
    f0: usize,
    f1: usize,
    fd: usize,
    taken: bool,
}

/// Format menus per layout family (applied to the caller's template or
/// array). All block sizes satisfy `b × P ≥ extent` for their template,
/// so every combination is valid.
fn formats(layout: usize) -> &'static [&'static str] {
    match layout {
        // a(16) straight onto p(4).
        0 => &["block", "cyclic", "cyclic(2)", "cyclic(3)", "block(5)"],
        // t(32) (strided, offset alignment) onto p(4).
        1 => &["block", "cyclic", "cyclic(2)", "cyclic(5)", "block(9)"],
        // 2-D a(8,8) onto q(2,2): format pairs.
        2 => &["block, block", "cyclic, block", "block, cyclic", "cyclic, cyclic(2)", "cyclic(3), block"],
        // t(16,4): a replicated along the second template axis.
        3 => &["block, block", "cyclic, block", "cyclic(2), block", "block(9), cyclic", "cyclic(3), cyclic"],
        _ => unreachable!(),
    }
}

/// Format menu for the callee's dummy. Layouts 0 and 2 share the
/// caller's menu (same extents); the template-aligned layouts map the
/// plain (unaligned) dummy from a 1-D menu of their own — for layout 3
/// the 1-D format onto the 2-D grid replicates over the unused axis,
/// so a dummy can even coincide with a replicated caller version (the
/// noop-leg case `copy_traffic` handles).
fn dummy_formats(layout: usize) -> &'static [&'static str] {
    match layout {
        0 | 2 => formats(layout),
        // x(12) onto p(4).
        1 => &["block", "cyclic", "cyclic(2)", "cyclic(5)", "block(9)"],
        // x(16) onto q(2,2) (distributed over axis 1, replicated on 2).
        3 => &["cyclic", "block", "cyclic(2)", "cyclic(3)", "block(9)"],
        _ => unreachable!(),
    }
}

/// Render the generated program. Every layout has the same control
/// skeleton — per-point init, a guarded redistribution, a call to an
/// interface-only INOUT callee — so the restore after the call is
/// flow-dependent with two possible tags.
fn render(g: &Gen) -> String {
    let f = formats(g.layout);
    let (f0, f1, fd) = (f[g.f0], f[g.f1], dummy_formats(g.layout)[g.fd]);
    match g.layout {
        0 => format!(
            "subroutine prest(s)\n  real :: a(16)\n!hpf$ processors p(4)\n!hpf$ dynamic a\n\
             !hpf$ distribute a({f0}) onto p\n  interface\n    subroutine foo(x)\n      \
             real :: x(16)\n      intent(inout) :: x\n!hpf$ distribute x({fd}) onto p\n    \
             end subroutine\n  end interface\n  do i = 1, 16\n    a(i) = i\n  enddo\n  \
             if (s > 0.0) then\n!hpf$ redistribute a({f1})\n    a = a + 2.0\n  endif\n  \
             call foo(a)\nend subroutine\n"
        ),
        1 => format!(
            "subroutine prest(s)\n  real :: a(12)\n!hpf$ processors p(4)\n\
             !hpf$ template t(32)\n!hpf$ dynamic t\n!hpf$ align a(i) with t(2*i + 3)\n\
             !hpf$ distribute t({f0}) onto p\n  interface\n    subroutine foo(x)\n      \
             real :: x(12)\n      intent(inout) :: x\n!hpf$ distribute x({fd}) onto p\n    \
             end subroutine\n  end interface\n  do i = 1, 12\n    a(i) = i\n  enddo\n  \
             if (s > 0.0) then\n!hpf$ redistribute t({f1})\n    a = a + 2.0\n  endif\n  \
             call foo(a)\nend subroutine\n"
        ),
        2 => format!(
            "subroutine prest(s)\n  real :: a(8, 8)\n!hpf$ processors q(2, 2)\n\
             !hpf$ dynamic a\n!hpf$ distribute a({f0}) onto q\n  interface\n    \
             subroutine foo(x)\n      real :: x(8, 8)\n      intent(inout) :: x\n\
             !hpf$ distribute x({fd}) onto q\n    end subroutine\n  end interface\n  \
             do i = 1, 8\n    do j = 1, 8\n      a(i, j) = i * 10.0 + j\n    enddo\n  \
             enddo\n  if (s > 0.0) then\n!hpf$ redistribute a({f1})\n    a = a + 2.0\n  \
             endif\n  call foo(a)\nend subroutine\n"
        ),
        3 => format!(
            "subroutine prest(s)\n  real :: a(16)\n!hpf$ processors q(2, 2)\n\
             !hpf$ template t(16, 4)\n!hpf$ dynamic t\n!hpf$ align a(i) with t(i, *)\n\
             !hpf$ distribute t({f0}) onto q\n  interface\n    subroutine foo(x)\n      \
             real :: x(16)\n      intent(inout) :: x\n!hpf$ distribute x({fd}) onto q\n    \
             end subroutine\n  end interface\n  do i = 1, 16\n    a(i) = i\n  enddo\n  \
             if (s > 0.0) then\n!hpf$ redistribute t({f1})\n    a = a + 2.0\n  endif\n  \
             call foo(a)\nend subroutine\n"
        ),
        _ => unreachable!(),
    }
}

/// The per-point oracle: init value, +2 on the taken branch, +1 from
/// the synthetic INOUT callee — position-dependent so a restore that
/// permutes or misplaces elements cannot pass.
fn oracle(g: &Gen, p: &StaticProgram) -> Vec<f64> {
    let delta = if g.taken { 3.0 } else { 1.0 };
    let extents = &p.arrays[0].versions[0].array_extents;
    extents
        .points()
        .map(|pt| {
            let init = if pt.len() == 2 {
                (pt[0] + 1) as f64 * 10.0 + (pt[1] + 1) as f64
            } else {
                (pt[0] + 1) as f64
            };
            init + delta
        })
        .collect()
}

struct PathOps<'a> {
    branch: &'a RemapOp,
    arg_in: &'a RemapOp,
    restore: &'a RestoreOp,
}

/// Locate the three remapping sites of the generated skeleton.
fn path_ops(p: &StaticProgram) -> PathOps<'_> {
    let mut branch = None;
    let mut arg_in = None;
    let mut restore = None;
    for s in &p.body {
        match s {
            SStmt::If { then_body, .. } => {
                branch = then_body.iter().find_map(|s| match s {
                    SStmt::Remap(op) => Some(op),
                    _ => None,
                });
            }
            SStmt::Remap(op) => arg_in = Some(op),
            SStmt::RestoreStatus(op) => restore = Some(op),
            _ => {}
        }
    }
    PathOps {
        branch: branch.expect("branch redistribution"),
        arg_in: arg_in.expect("ArgIn remap"),
        restore: restore.expect("flow-dependent restore"),
    }
}

/// Wire traffic of one guarded copy source, from its attached
/// schedule. A remap whose live source *is* the target is skipped by
/// the runtime status check — zero traffic (this happens when the
/// callee's dummy mapping is interned onto one of the caller's
/// versions, e.g. a replicated caller mapping equal to the dummy's).
fn copy_traffic(copies: &[hpfc::codegen::ir::SpmdCopy], src: u32, target: u32) -> (u64, u64) {
    if src == target {
        return (0, 0);
    }
    let c = copies.iter().find(|c| c.src == src).expect("copy for the live source");
    (c.schedule().messages.len() as u64, c.schedule().total_bytes())
}

/// Run one compiled module under the given copy engine.
fn run(compiled: &hpfc::Compiled, taken: bool, mode: ExecMode) -> ExecResult {
    let programs = compiled.programs();
    let nprocs = programs.values().map(|p| p.nprocs).max().unwrap();
    let mut ex = hpfc::Executor {
        programs: &programs,
        machine: hpfc::Machine::new(nprocs).with_exec_mode(mode),
        config: ExecConfig::default().with_scalar("s", if taken { 1.0 } else { -1.0 }),
    };
    ex.run("prest").expect("prest executes cleanly")
}

fn gen_strategy() -> impl Strategy<Value = Gen> {
    (0usize..4, 0usize..5, 0usize..5, 0usize..5, prop::bool::ANY).prop_map(
        |(layout, f0, d1, d2, taken)| {
            // Three pairwise-distinct format indices: the branch must
            // change the mapping (else the restore is not
            // flow-dependent), and within a shared menu distinct
            // indices keep the dummy off the caller's versions so most
            // paths move data through the restore arm. (For the
            // template-aligned layouts the dummy draws from its own
            // menu, so it can still coincide with a caller version —
            // a legal noop leg `copy_traffic` accounts as zero.)
            let f1 = (f0 + 1 + d1 % 4) % 5;
            let mut fd = (f0 + 1 + d2 % 4) % 5;
            if fd == f1 {
                fd = (fd + 1) % 5;
                if fd == f0 {
                    fd = (fd + 1) % 5;
                }
            }
            Gen { layout, f0, f1, fd, taken }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn restores_execute_from_compiled_arms(g in gen_strategy()) {
        let src = render(&g);
        let naive = compile(&src, &CompileOptions::naive())
            .unwrap_or_else(|e| panic!("{e:?}\n{src}"));
        let p = &naive.units["prest"].program;
        let ops = path_ops(p);

        // --- static shape: one compiled arm per possible tag, each
        // covering every version that can be live at the restore.
        prop_assert_eq!(ops.restore.arms.len(), ops.restore.possible.len());
        prop_assert!(ops.restore.possible.len() >= 2, "flow-dependent\n{}", src);
        for arm in &ops.restore.arms {
            prop_assert!(ops.restore.possible.contains(&arm.target));
            if !ops.restore.no_data {
                for r in &ops.restore.reaching {
                    prop_assert!(
                        *r == arm.target || arm.copies.iter().any(|c| c.src == *r),
                        "arm {} misses reaching source {}\n{}", arm.target, r, src
                    );
                }
            }
        }

        // --- the expected path traffic, read off the compiled
        // schedules: branch remap (taken only), ArgIn remap from the
        // live tag, restore arm *of that tag* back from the dummy.
        let tag = if g.taken { ops.branch.target } else { *ops.branch.reaching.iter().next().unwrap() };
        let mut exp_msgs = 0;
        let mut exp_bytes = 0;
        if g.taken {
            let src = *ops.branch.reaching.iter().next().unwrap();
            let (m, b) = copy_traffic(&ops.branch.copies, src, ops.branch.target);
            exp_msgs += m;
            exp_bytes += b;
        }
        let (m, b) = copy_traffic(&ops.arg_in.copies, tag, ops.arg_in.target);
        exp_msgs += m;
        exp_bytes += b;
        let arm = ops.restore.arm_for(tag).expect("arm for the live tag");
        let (m, b) = copy_traffic(&arm.copies, ops.arg_in.target, arm.target);
        exp_msgs += m;
        exp_bytes += b;

        // --- execute under both copy engines; everything must agree.
        let serial = run(&naive, g.taken, ExecMode::Serial);
        let parallel = run(&naive, g.taken, ExecMode::Parallel(4));
        let want = oracle(&g, p);
        prop_assert_eq!(&serial.arrays["a"], &want, "serial values\n{}", src);
        prop_assert_eq!(&parallel.arrays["a"], &want, "parallel values\n{}", src);

        for (label, res) in [("serial", &serial), ("parallel", &parallel)] {
            // (b) nothing planned at run time: the restore arms were
            // seeded into the cache like every remap copy.
            prop_assert_eq!(res.stats.plans_computed, 0, "{} planned\n{}", label, src);
            prop_assert_eq!(res.stats.restores_replayed, 1, "{}\n{}", label, src);
            // (c) the executed traffic is exactly the taken path's
            // compiled schedules, restore arm included: a wrong arm
            // would book a different schedule.
            prop_assert_eq!(res.stats.messages, exp_msgs, "{} messages\n{}", label, src);
            prop_assert_eq!(res.stats.bytes, exp_bytes, "{} bytes\n{}", label, src);
        }

        // --- the optimized compilation agrees on values and also
        // never plans at run time.
        let opt = compile(&src, &CompileOptions::default())
            .unwrap_or_else(|e| panic!("{e:?}\n{src}"));
        let opt_res = run(&opt, g.taken, ExecMode::Serial);
        prop_assert_eq!(&opt_res.arrays["a"], &want, "optimized values\n{}", src);
        prop_assert_eq!(opt_res.stats.plans_computed, 0, "optimized planned\n{}", src);
        prop_assert!(opt_res.stats.bytes <= serial.stats.bytes, "opt traffic grew\n{}", src);
    }
}
