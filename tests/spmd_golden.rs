//! Golden-output tests for the message-level SPMD code generation: a
//! strided 2-D remap must render as per-pair packed send/recv loops
//! (never whole-array copy statements), the executed caterpillar
//! schedule must match the redistribution plan message for message, and
//! a Fig. 18 flow-dependent restore must render as a switch on the
//! saved tag whose arms are the same packed send/recv loops.

use hpfc::codegen::ir::{RemapGroupOp, RemapOp, RestoreOp, SStmt};
use hpfc::{compile, CompileOptions};

/// A 2-D array aligned with stride 2 into a template, remapped from a
/// BLOCK row distribution to a wrapping CYCLIC(2) one: the paper's
/// Fig. 19/20 situation with genuinely strided periodic ownership.
const STRIDED_2D: &str = "\
subroutine spmd2d
  real :: a(4, 8)
!hpf$ processors p(2)
!hpf$ template t(8, 8)
!hpf$ dynamic t
!hpf$ align a(i, j) with t(2*i, j)
!hpf$ distribute t(block, *) onto p
  a = 1.0
!hpf$ redistribute t(cyclic(2), *) onto p
  x = a(2, 2)
end subroutine
";

fn first_remap(body: &[SStmt]) -> Option<&RemapOp> {
    for s in body {
        match s {
            SStmt::Remap(op) => return Some(op),
            SStmt::If { then_body, else_body, .. } => {
                if let Some(op) = first_remap(then_body).or_else(|| first_remap(else_body)) {
                    return Some(op);
                }
            }
            SStmt::Do { body, .. } => {
                if let Some(op) = first_remap(body) {
                    return Some(op);
                }
            }
            _ => {}
        }
    }
    None
}

#[test]
fn strided_2d_remap_renders_packed_send_recv_loops() {
    let compiled = compile(STRIDED_2D, &CompileOptions::default()).unwrap();
    let p = &compiled.units["spmd2d"].program;
    let op = first_remap(&p.body).expect("the redistribution's remap");
    let text = hpfc::codegen::render::remap_text(p, op);
    let expected = "\
if (status_a /= 1) then
  allocate a_1 if needed
  if (.not. live_a(1)) then
    if (status_a == 0) then  ! a_0 -> a_1: 2 message(s), 128 byte(s), 1 round(s)
      copy local runs a_0 \u{2229} a_1 across ranks (16 element(s) total, no communication)
      round 1:
        p0 -> p1: 8 element(s), 64 byte(s)
          on p0:  ! pack
            k = 0
            do (lo0, hi0) in runs(d0: {[0,2)} \u{2229} {[1,2)+2k})
              do i0 = lo0, hi0-1
                do (lo1, hi1) in runs(d1: {[0,8)} \u{2229} {[0,8)})
                  sbuf(k : k+hi1-lo1) = a_0(pos_0(i0, lo1) : pos_0(i0, hi1)); k += hi1-lo1
            send sbuf(0:8) -> p1  ! 64 bytes
          on p1:  ! unpack
            recv rbuf(0:8) <- p0  ! 64 bytes
            k = 0
            do (lo0, hi0) in runs(d0: {[0,2)} \u{2229} {[1,2)+2k})
              do i0 = lo0, hi0-1
                do (lo1, hi1) in runs(d1: {[0,8)} \u{2229} {[0,8)})
                  a_1(pos_1(i0, lo1) : pos_1(i0, hi1)) = rbuf(k : k+hi1-lo1); k += hi1-lo1
        p1 -> p0: 8 element(s), 64 byte(s)
          on p1:  ! pack
            k = 0
            do (lo0, hi0) in runs(d0: {[2,4)} \u{2229} {[0,1)+2k})
              do i0 = lo0, hi0-1
                do (lo1, hi1) in runs(d1: {[0,8)} \u{2229} {[0,8)})
                  sbuf(k : k+hi1-lo1) = a_0(pos_0(i0, lo1) : pos_0(i0, hi1)); k += hi1-lo1
            send sbuf(0:8) -> p0  ! 64 bytes
          on p0:  ! unpack
            recv rbuf(0:8) <- p1  ! 64 bytes
            k = 0
            do (lo0, hi0) in runs(d0: {[2,4)} \u{2229} {[0,1)+2k})
              do i0 = lo0, hi0-1
                do (lo1, hi1) in runs(d1: {[0,8)} \u{2229} {[0,8)})
                  a_1(pos_1(i0, lo1) : pos_1(i0, hi1)) = rbuf(k : k+hi1-lo1); k += hi1-lo1
    endif
    live_a(1) = .true.
  endif
  status_a = 1
endif
if (live_a(0)) then
  free a_0
  live_a(0) = .false.
endif
";
    assert_eq!(text, expected);
    // Structural guarantees the golden string encodes, stated
    // explicitly: per-pair messages, no whole-array copy statements.
    assert!(!text.contains("a_1 = a_0"));
    assert!(text.matches("send sbuf").count() == 2 && text.matches("recv rbuf").count() == 2);
}

/// Fig. 3's situation at golden scale: two arrays aligned to one
/// dynamic template, remapped together by a single redistribution —
/// the directive must lower to ONE remap group whose rounds carry
/// coalesced per-pair wire buffers with one packed part per array,
/// not two back-to-back solo remaps.
const GROUPED_2ARRAY: &str = "\
subroutine grp2
  real :: a(8), b(8)
!hpf$ processors p(2)
!hpf$ template t(8)
!hpf$ dynamic t
!hpf$ align with t :: a, b
!hpf$ distribute t(block) onto p
  a = 1.0
  b = 2.0
!hpf$ redistribute t(cyclic) onto p
  x = a(1) + b(2)
end subroutine
";

fn first_group(body: &[SStmt]) -> Option<&RemapGroupOp> {
    body.iter().find_map(|s| match s {
        SStmt::RemapGroup(op) => Some(op),
        _ => None,
    })
}

#[test]
fn two_array_directive_renders_one_grouped_remap() {
    let compiled = compile(GROUPED_2ARRAY, &CompileOptions::default()).unwrap();
    let p = &compiled.units["grp2"].program;
    let op = first_group(&p.body).expect("the directive's remap group");
    assert_eq!(op.members.len(), 2);
    let text = hpfc::codegen::render::remap_group_text(p, op);
    let expected = "\
! remap group (one directive, 2 arrays): a_0 -> a_1, b_0 -> b_1
! merged schedule: 2 wire message(s), 64 byte(s), 1 round(s) (solo sum: 2 round(s))
if (status_a == 0 .and. .not. live_a(1) .and. status_b == 0 .and. .not. live_b(1)) then  ! coalesced bounce
  allocate a_1, b_1 if needed
  copy local runs a_0 \u{2229} a_1 across ranks (4 element(s) total, no communication)
  copy local runs b_0 \u{2229} b_1 across ranks (4 element(s) total, no communication)
  round 1:
    p0 -> p1: 4 element(s), 32 byte(s), one buffer coalescing 2 message(s)
      part a_0 -> a_1:
        p0 -> p1: 2 element(s), 16 byte(s)
          on p0:  ! pack
            k = 0
            do (lo0, hi0) in runs(d0: {[0,4)} \u{2229} {[1,2)+2k})
              sbuf(k : k+hi0-lo0) = a_0(pos_0(lo0) : pos_0(hi0)); k += hi0-lo0
            send sbuf(0:2) -> p1  ! 16 bytes
          on p1:  ! unpack
            recv rbuf(0:2) <- p0  ! 16 bytes
            k = 0
            do (lo0, hi0) in runs(d0: {[0,4)} \u{2229} {[1,2)+2k})
              a_1(pos_1(lo0) : pos_1(hi0)) = rbuf(k : k+hi0-lo0); k += hi0-lo0
      part b_0 -> b_1:
        p0 -> p1: 2 element(s), 16 byte(s)
          on p0:  ! pack
            k = 0
            do (lo0, hi0) in runs(d0: {[0,4)} \u{2229} {[1,2)+2k})
              sbuf(k : k+hi0-lo0) = b_0(pos_0(lo0) : pos_0(hi0)); k += hi0-lo0
            send sbuf(0:2) -> p1  ! 16 bytes
          on p1:  ! unpack
            recv rbuf(0:2) <- p0  ! 16 bytes
            k = 0
            do (lo0, hi0) in runs(d0: {[0,4)} \u{2229} {[1,2)+2k})
              b_1(pos_1(lo0) : pos_1(hi0)) = rbuf(k : k+hi0-lo0); k += hi0-lo0
    p1 -> p0: 4 element(s), 32 byte(s), one buffer coalescing 2 message(s)
      part a_0 -> a_1:
        p1 -> p0: 2 element(s), 16 byte(s)
          on p1:  ! pack
            k = 0
            do (lo0, hi0) in runs(d0: {[4,8)} \u{2229} {[0,1)+2k})
              sbuf(k : k+hi0-lo0) = a_0(pos_0(lo0) : pos_0(hi0)); k += hi0-lo0
            send sbuf(0:2) -> p0  ! 16 bytes
          on p0:  ! unpack
            recv rbuf(0:2) <- p1  ! 16 bytes
            k = 0
            do (lo0, hi0) in runs(d0: {[4,8)} \u{2229} {[0,1)+2k})
              a_1(pos_1(lo0) : pos_1(hi0)) = rbuf(k : k+hi0-lo0); k += hi0-lo0
      part b_0 -> b_1:
        p1 -> p0: 2 element(s), 16 byte(s)
          on p1:  ! pack
            k = 0
            do (lo0, hi0) in runs(d0: {[4,8)} \u{2229} {[0,1)+2k})
              sbuf(k : k+hi0-lo0) = b_0(pos_0(lo0) : pos_0(hi0)); k += hi0-lo0
            send sbuf(0:2) -> p0  ! 16 bytes
          on p0:  ! unpack
            recv rbuf(0:2) <- p1  ! 16 bytes
            k = 0
            do (lo0, hi0) in runs(d0: {[4,8)} \u{2229} {[0,1)+2k})
              b_1(pos_1(lo0) : pos_1(hi0)) = rbuf(k : k+hi0-lo0); k += hi0-lo0
  live_a(1) = .true.; status_a = 1
  live_b(1) = .true.; status_b = 1
else
  ! partial group: non-moving members drop out of the coalesced buffers (their wire parts are masked); below two movers every member runs its solo guarded remap (same compiled plans, Fig. 20)
endif
if (live_a(0)) then
  free a_0
  live_a(0) = .false.
endif
if (live_b(0)) then
  free b_0
  live_b(0) = .false.
endif
";
    assert_eq!(text, expected);

    // The two old back-to-back solo remap texts are gone from the
    // whole program: no solo Fig. 20 guards, no per-array allocate
    // lines, and only one round structure for the directive.
    let program = hpfc::codegen::render::program_text(p);
    assert!(!program.contains("if (status_a /= 1) then"), "{program}");
    assert!(!program.contains("if (status_b /= 1) then"), "{program}");
    assert!(!program.contains("allocate a_1 if needed"), "{program}");
    assert!(!program.contains("allocate b_1 if needed"), "{program}");
    assert!(!program.contains("! a_0 -> a_1: "), "solo schedule header gone: {program}");
    assert!(!program.contains("! b_0 -> b_1: "), "solo schedule header gone: {program}");
    assert_eq!(program.matches("round 1:").count(), 1, "one merged round structure");
    // And the ungrouped baseline still renders exactly those two solo
    // remaps — the assertion above is about grouping, not renaming.
    let solo = compile(GROUPED_2ARRAY, &CompileOptions::default().ungrouped()).unwrap();
    let solo_text = hpfc::codegen::render::program_text(&solo.units["grp2"].program);
    assert!(solo_text.contains("if (status_a /= 1) then"));
    assert!(solo_text.contains("if (status_b /= 1) then"));
    assert_eq!(solo_text.matches("round 1:").count(), 2);
}

#[test]
fn grouped_schedule_matches_member_plans_message_for_message() {
    let compiled = compile(GROUPED_2ARRAY, &CompileOptions::default()).unwrap();
    let p = &compiled.units["grp2"].program;
    let op = first_group(&p.body).expect("group");
    let sched = &op.planned.schedule;
    // Per member: the merged schedule contains exactly the member
    // plan's transfers, tagged with the member index.
    for (i, member) in op.members.iter().enumerate() {
        let decl = p.array(member.array);
        let plan = hpfc::runtime::plan_redistribution(
            &decl.versions[member.copies[0].src as usize],
            &decl.versions[member.target as usize],
            decl.elem_size,
        );
        let member_msgs: Vec<_> =
            sched.messages.iter().filter(|m| m.member == i).collect();
        assert_eq!(member_msgs.len() as u64, plan.total_messages());
        for (m, t) in member_msgs.iter().zip(&plan.transfers) {
            assert_eq!((m.from, m.to, m.elements), (t.from, t.to, t.elements));
        }
    }
    // Costing the merged schedule books the coalesced wire messages
    // but the full byte volume.
    let mut machine = hpfc::Machine::new(p.nprocs);
    let t = machine.account_schedule(sched);
    assert!(t > 0.0);
    assert_eq!(machine.stats.messages, sched.n_wire_messages());
    assert_eq!(machine.stats.bytes, sched.total_bytes());
}

/// Fig. 18's situation at golden scale: the mapping reaching the call
/// is flow-dependent (BLOCK or CYCLIC(2) depending on the branch), so
/// the post-call restore must dispatch on the saved status tag — and
/// after this PR each tag's arm is a complete compile-time-planned
/// packed send/recv remap from the dummy's CYCLIC version.
const SAVE_RESTORE: &str = "\
subroutine saverest(s)
  real :: a(8)
!hpf$ processors p(2)
!hpf$ dynamic a
!hpf$ distribute a(block) onto p
  interface
    subroutine foo(x)
      real :: x(8)
      intent(inout) :: x
!hpf$ distribute x(cyclic) onto p
    end subroutine
  end interface
  a = 1.0
  if (s > 0.0) then
!hpf$ redistribute a(cyclic(2))
    a = 2.0
  endif
  call foo(a)
end subroutine
";

fn first_restore(body: &[SStmt]) -> Option<&RestoreOp> {
    body.iter().find_map(|s| match s {
        SStmt::RestoreStatus(op) => Some(op),
        _ => None,
    })
}

#[test]
fn flow_dependent_restore_renders_switch_of_packed_arms() {
    let compiled = compile(SAVE_RESTORE, &CompileOptions::naive()).unwrap();
    let p = &compiled.units["saverest"].program;
    let op = first_restore(&p.body).expect("the call's flow-dependent restore");
    assert_eq!(op.arms.len(), 2, "one arm per possible saved tag");
    let text = hpfc::codegen::render::restore_text(p, op);
    let expected = "\
if (reaching_0 == 0) then  ! restore a -> a_0
  if (status_a /= 0) then
    allocate a_0 if needed
    if (.not. live_a(0)) then
      if (status_a == 2) then  ! a_2 -> a_0: 2 message(s), 32 byte(s), 1 round(s)
        copy local runs a_2 \u{2229} a_0 across ranks (4 element(s) total, no communication)
        round 1:
          p0 -> p1: 2 element(s), 16 byte(s)
            on p0:  ! pack
              k = 0
              do (lo0, hi0) in runs(d0: {[0,1)+2k} \u{2229} {[4,8)})
                sbuf(k : k+hi0-lo0) = a_2(pos_2(lo0) : pos_2(hi0)); k += hi0-lo0
              send sbuf(0:2) -> p1  ! 16 bytes
            on p1:  ! unpack
              recv rbuf(0:2) <- p0  ! 16 bytes
              k = 0
              do (lo0, hi0) in runs(d0: {[0,1)+2k} \u{2229} {[4,8)})
                a_0(pos_0(lo0) : pos_0(hi0)) = rbuf(k : k+hi0-lo0); k += hi0-lo0
          p1 -> p0: 2 element(s), 16 byte(s)
            on p1:  ! pack
              k = 0
              do (lo0, hi0) in runs(d0: {[1,2)+2k} \u{2229} {[0,4)})
                sbuf(k : k+hi0-lo0) = a_2(pos_2(lo0) : pos_2(hi0)); k += hi0-lo0
              send sbuf(0:2) -> p0  ! 16 bytes
            on p0:  ! unpack
              recv rbuf(0:2) <- p1  ! 16 bytes
              k = 0
              do (lo0, hi0) in runs(d0: {[1,2)+2k} \u{2229} {[0,4)})
                a_0(pos_0(lo0) : pos_0(hi0)) = rbuf(k : k+hi0-lo0); k += hi0-lo0
      endif
      live_a(0) = .true.
    endif
    status_a = 0
  endif
  if (live_a(2)) then
    free a_2
    live_a(2) = .false.
  endif
elif (reaching_0 == 1) then  ! restore a -> a_1
  if (status_a /= 1) then
    allocate a_1 if needed
    if (.not. live_a(1)) then
      if (status_a == 2) then  ! a_2 -> a_1: 2 message(s), 32 byte(s), 1 round(s)
        copy local runs a_2 \u{2229} a_1 across ranks (4 element(s) total, no communication)
        round 1:
          p0 -> p1: 2 element(s), 16 byte(s)
            on p0:  ! pack
              k = 0
              do (lo0, hi0) in runs(d0: {[0,1)+2k} \u{2229} {[2,4)+4k})
                sbuf(k : k+hi0-lo0) = a_2(pos_2(lo0) : pos_2(hi0)); k += hi0-lo0
              send sbuf(0:2) -> p1  ! 16 bytes
            on p1:  ! unpack
              recv rbuf(0:2) <- p0  ! 16 bytes
              k = 0
              do (lo0, hi0) in runs(d0: {[0,1)+2k} \u{2229} {[2,4)+4k})
                a_1(pos_1(lo0) : pos_1(hi0)) = rbuf(k : k+hi0-lo0); k += hi0-lo0
          p1 -> p0: 2 element(s), 16 byte(s)
            on p1:  ! pack
              k = 0
              do (lo0, hi0) in runs(d0: {[1,2)+2k} \u{2229} {[0,2)+4k})
                sbuf(k : k+hi0-lo0) = a_2(pos_2(lo0) : pos_2(hi0)); k += hi0-lo0
              send sbuf(0:2) -> p0  ! 16 bytes
            on p0:  ! unpack
              recv rbuf(0:2) <- p1  ! 16 bytes
              k = 0
              do (lo0, hi0) in runs(d0: {[1,2)+2k} \u{2229} {[0,2)+4k})
                a_1(pos_1(lo0) : pos_1(hi0)) = rbuf(k : k+hi0-lo0); k += hi0-lo0
      endif
      live_a(1) = .true.
    endif
    status_a = 1
  endif
  if (live_a(2)) then
    free a_2
    live_a(2) = .false.
  endif
endif
";
    assert_eq!(text, expected);
    // Structural guarantees the golden string encodes: the restore is a
    // tag switch whose arms carry packed send/recv loops; the old
    // opaque run-time restore statement is gone from the whole program.
    let program = hpfc::codegen::render::program_text(p);
    assert!(!program.contains("remap a -> a_"), "{program}");
    assert!(program.contains("reaching_0 = status_a"), "{program}");
    assert_eq!(text.matches("send sbuf").count(), 4);
    assert_eq!(text.matches("recv rbuf").count(), 4);
    assert!(!text.contains("a_0 = a_2") && !text.contains("a_1 = a_2"));
}

#[test]
fn restore_arm_schedules_match_their_plans() {
    // Every arm's attached schedule must be the plan's, message for
    // message — the restore arms are the same artifact as remap copies.
    let compiled = compile(SAVE_RESTORE, &CompileOptions::naive()).unwrap();
    let p = &compiled.units["saverest"].program;
    let op = first_restore(&p.body).expect("restore");
    let decl = p.array(op.array);
    for arm in &op.arms {
        assert_eq!(arm.copies.len(), 1, "one reaching source (the dummy version)");
        let copy = &arm.copies[0];
        let plan = hpfc::runtime::plan_redistribution(
            &decl.versions[copy.src as usize],
            &decl.versions[arm.target as usize],
            decl.elem_size,
        );
        let sched = copy.schedule();
        assert_eq!(sched.messages.len() as u64, plan.total_messages());
        for (m, t) in sched.messages.iter().zip(&plan.transfers) {
            assert_eq!((m.from, m.to, m.elements), (t.from, t.to, t.elements));
        }
        assert_eq!(sched.total_bytes(), plan.total_bytes());
        let prog = copy.planned.program.as_ref().expect("1-D plan compiles");
        assert_eq!(prog.n_elements(), 8, "every element delivered once");
    }
}

#[test]
fn schedule_costing_matches_plan_message_for_message() {
    let compiled = compile(STRIDED_2D, &CompileOptions::default()).unwrap();
    let p = &compiled.units["spmd2d"].program;
    let op = first_remap(&p.body).expect("remap");
    assert_eq!(op.copies.len(), 1, "one reaching source");
    let sched = op.copies[0].schedule();

    // Recompute the plan independently and compare pair by pair.
    let decl = p.array(op.array);
    let plan = hpfc::runtime::plan_redistribution(
        &decl.versions[op.copies[0].src as usize],
        &decl.versions[op.target as usize],
        decl.elem_size,
    );
    assert_eq!(sched.messages.len() as u64, plan.total_messages());
    for (m, t) in sched.messages.iter().zip(&plan.transfers) {
        assert_eq!((m.from, m.to, m.elements), (t.from, t.to, t.elements));
    }
    assert_eq!(sched.total_bytes(), plan.total_bytes());
    assert_eq!(sched.local_elements, plan.local_elements);

    // Costing the caterpillar schedule books exactly the plan's
    // messages and bytes, round by contention-free round.
    let mut m = hpfc::Machine::new(p.nprocs);
    let t = m.account_schedule(sched);
    assert!(t > 0.0);
    assert_eq!(m.stats.messages, plan.total_messages());
    assert_eq!(m.stats.bytes, plan.total_bytes());
    assert_eq!(m.stats.local_elements, plan.local_elements);
}
