pub use hpfc::*;
